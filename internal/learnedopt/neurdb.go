// Package learnedopt implements the paper's fast-adaptive learned query
// optimizer (§4.2, Fig. 5) and the two learned baselines of Figure 8:
//
//   - NeurDB: a dual-module model. The *encoder* projects tree-linearized
//     candidate-plan tokens and system-condition tokens (buffer information
//   - data statistics) and fuses them with cross-attention; the *analyzer*
//     runs multi-head attention across the candidate embeddings and an MLP
//     that scores each candidate, selecting the plan best suited to the
//     *current* system conditions.
//   - Bao (Marcus et al., SIGMOD'21): hint-set arms scored by a stable value
//     network over plan features — no system-condition input.
//   - Lero (Zhu et al., VLDB'23): candidates from cardinality perturbation,
//     ranked by a stable pairwise comparator.
//
// The cost-based optimizer planning on stale statistics plays the
// "PostgreSQL" role.
package learnedopt

import (
	"math"
	"math/rand"

	"neurdb/internal/catalog"
	"neurdb/internal/nn"
	"neurdb/internal/plan"
	"neurdb/internal/storage"
)

// CondFeatureDim is the width of one system-condition token. One token per
// table (padded/truncated to MaxCondTokens) plus one global buffer token.
const CondFeatureDim = 8

// MaxCondTokens bounds the condition sequence length.
const MaxCondTokens = 9

// BuildConditions encodes current system conditions: one token per table
// (data statistics: row count, NDV, value span — and buffer residency) plus
// a global buffer token. This is the model input that changes under drift,
// giving the learned optimizer its adaptivity.
func BuildConditions(tables []*catalog.Table, pool *storage.BufferPool) *nn.Matrix {
	rows := make([][]float64, 0, MaxCondTokens)
	global := make([]float64, CondFeatureDim)
	global[0] = 1 // bias/global marker
	if pool != nil {
		global[1] = pool.HitRatio()
		global[2] = float64(pool.Len()) / float64(max(pool.Capacity(), 1))
	}
	rows = append(rows, global)
	for i, t := range tables {
		if i >= MaxCondTokens-1 {
			break
		}
		tok := make([]float64, CondFeatureDim)
		st := t.Stats
		nRows := float64(st.Rows())
		tok[0] = 0
		tok[1] = math.Log1p(nRows) / 20
		tok[2] = float64(t.ID%16) / 16
		if pool != nil {
			tok[3] = pool.ResidentFraction(t.ID, t.Heap.NumPages())
		}
		// Aggregate column statistics: mean NDV ratio and mean value span.
		arity := t.Schema.Arity()
		var ndvSum, spanSum float64
		for c := 0; c < arity; c++ {
			cs := st.Col(c)
			if cs.Count > 0 {
				ndvSum += float64(cs.Distinct) / float64(cs.Count)
				spanSum += math.Log1p(math.Abs(cs.Max-cs.Min)) / 20
			}
		}
		if arity > 0 {
			tok[4] = ndvSum / float64(arity)
			tok[5] = spanSum / float64(arity)
		}
		tok[6] = math.Log1p(float64(t.Heap.NumPages())) / 15
		tok[7] = 1
		rows = append(rows, tok)
	}
	return nn.FromRows(rows)
}

// Model is the dual-module learned optimizer.
type Model struct {
	D, Heads int

	tokenProj *nn.Linear
	condProj  *nn.Linear
	cross     *nn.CrossAttention
	analyzer  *nn.MultiHeadAttention
	mlp       *nn.Sequential
}

// NewModel builds the model with embedding width d (divisible by heads).
func NewModel(d, heads int, seed int64) *Model {
	r := rand.New(rand.NewSource(seed))
	return &Model{
		D: d, Heads: heads,
		tokenProj: nn.NewLinear(plan.NodeFeatureDim, d, r),
		condProj:  nn.NewLinear(CondFeatureDim, d, r),
		cross:     nn.NewCrossAttention(d, heads, r),
		analyzer:  nn.NewMultiHeadAttention(d, heads, r),
		mlp: nn.NewSequential(
			nn.NewLinear(d, 2*d, r),
			&nn.ReLU{},
			nn.NewLinear(2*d, 1, r),
		),
	}
}

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	out := append([]*nn.Param{}, m.tokenProj.Params()...)
	out = append(out, m.condProj.Params()...)
	out = append(out, m.cross.Params()...)
	out = append(out, m.analyzer.Params()...)
	out = append(out, m.mlp.Params()...)
	return out
}

// linearView shares parameters but keeps a private forward cache, so each
// candidate's backward pass sees its own activations.
func linearView(l *nn.Linear) *nn.Linear { return &nn.Linear{WP: l.WP, BP: l.BP} }

func crossView(c *nn.CrossAttention) *nn.CrossAttention {
	return &nn.CrossAttention{Dim: c.Dim, Heads: c.Heads, Wq: c.Wq, Wk: c.Wk, Wv: c.Wv, Wo: c.Wo}
}

// candState carries the per-candidate caches needed for backward.
type candState struct {
	tproj *nn.Linear
	cview *nn.CrossAttention
	rows  int
}

// forward scores all candidates; states are retained for backward.
func (m *Model) forward(tokens [][][]float64, cond *nn.Matrix) (*nn.Matrix, []candState, *nn.Matrix, *nn.Matrix) {
	condProj := m.condProj.Forward(cond)
	k := len(tokens)
	e := nn.NewMatrix(k, m.D)
	states := make([]candState, k)
	for i, tok := range tokens {
		x := nn.FromRows(tok)
		tv := linearView(m.tokenProj)
		cv := crossView(m.cross)
		xp := tv.Forward(x)
		f := cv.ForwardQKV(xp, condProj)
		fused := nn.Add(xp, f) // residual
		pooled := nn.MeanRows(fused)
		copy(e.Row(i), pooled.Row(0))
		states[i] = candState{tproj: tv, cview: cv, rows: xp.Rows}
	}
	a := m.analyzer.Forward(e)
	e2 := nn.Add(e, a) // residual
	scores := m.mlp.Forward(e2)
	return scores, states, e, condProj
}

// Choose returns the index of the best-scored candidate plan.
func (m *Model) Choose(tokens [][][]float64, cond *nn.Matrix) int {
	if len(tokens) == 0 {
		return 0
	}
	if len(tokens) == 1 {
		return 0
	}
	scores, _, _, _ := m.forward(tokens, cond)
	best := 0
	for i := 1; i < scores.Rows; i++ {
		if scores.At(i, 0) > scores.At(best, 0) {
			best = i
		}
	}
	return best
}

// Example is one training instance: candidate plan token sequences, the
// system conditions at execution time, and the index of the fastest
// candidate (by measured runtime).
type Example struct {
	Tokens [][][]float64
	Cond   *nn.Matrix
	Best   int
}

// TrainExample runs one optimization step (softmax cross-entropy on the
// best-candidate label) and returns the loss.
func (m *Model) TrainExample(ex Example, opt nn.Optimizer) float64 {
	if len(ex.Tokens) < 2 {
		return 0
	}
	params := m.Params()
	opt.ZeroGrad(params)
	scores, states, _, _ := m.forward(ex.Tokens, ex.Cond)

	// scores is [K,1]; build [1,K] logits for the CE loss.
	k := scores.Rows
	logits := nn.NewMatrix(1, k)
	for i := 0; i < k; i++ {
		logits.Set(0, i, scores.At(i, 0))
	}
	loss, dlogits := nn.SoftmaxCELoss(logits, []int{ex.Best})
	dscores := nn.NewMatrix(k, 1)
	for i := 0; i < k; i++ {
		dscores.Set(i, 0, dlogits.At(0, i))
	}

	// Backward through analyzer + encoder.
	de2 := m.mlp.Backward(dscores)
	de := nn.Add(de2, m.analyzer.Backward(de2))
	var dcondSum *nn.Matrix
	for i, st := range states {
		dpooled := de.Row(i)
		dxf := nn.NewMatrix(st.rows, m.D)
		inv := 1.0 / float64(st.rows)
		for r := 0; r < st.rows; r++ {
			row := dxf.Row(r)
			for c := 0; c < m.D; c++ {
				row[c] = dpooled[c] * inv
			}
		}
		dxq, dcond := st.cview.BackwardQKV(dxf)
		dx := nn.Add(dxf, dxq) // residual: fused = xp + f
		st.tproj.Backward(dx)
		if dcondSum == nil {
			dcondSum = dcond
		} else {
			nn.AddInPlace(dcondSum, dcond)
		}
	}
	if dcondSum != nil {
		m.condProj.Backward(dcondSum)
	}
	nn.ClipGradNorm(params, 5)
	opt.Step(params)
	return loss
}

// EncodeCandidates turns candidate plans into token sequences.
func EncodeCandidates(cands []plan.Node) [][][]float64 {
	out := make([][][]float64, len(cands))
	for i, c := range cands {
		out[i] = plan.EncodeTree(c)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
