package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lifecycle enforces the resource-lifecycle contracts of the client surface
// and the batch read path with a flow-sensitive dataflow analysis over the
// lint IR (ir.go):
//
//   - a Rows, Stmt, Session, or Conn must not be used after Close: the read
//     transaction is finalized at Rows.Close, the server portal is gone
//     after client Close, and a Session's snapshot is dead — a post-Close
//     Next/Scan/Exec silently reads a finalized cursor. Close and Err stay
//     callable by contract (database/sql parity).
//   - the page-head slice returned by BatchCursor.NextPage is recycled on
//     the following NextPage call; reading a previous page's heads after
//     advancing the cursor observes the *new* page's versions. This is the
//     dataflow upgrade of batchalias's syntactic escape heuristic: it
//     catches reuse that never escapes the function.
//
// Both are must-analyses — a use is reported only when the kill dominates
// it (it happened on every path) — so the analyzer cannot cry wolf on
// conditional closes. Helper functions that close a parameter are seen
// through via the summaries pass (CloseParams), cross-package included.
var Lifecycle = &Analyzer{
	Name: "lifecycle",
	Doc:  "flag Rows/Stmt/Session/Conn used after Close and page-head slices reused across NextPage (dataflow)",
	Packages: []string{
		"neurdb",
		"neurdb/client",
		"neurdb/internal/server",
		"neurdb/internal/executor",
		"neurdb/internal/storage",
		"neurdb/cmd/...",
		"neurdb/examples/...",
	},
	Run: runLifecycle,
}

// closableNames are the module types whose Close finalizes the value.
var closableNames = map[string]bool{
	"Rows":    true,
	"Stmt":    true,
	"Session": true,
	"Conn":    true,
}

// lifecycle lattice per tracked variable.
type lcState uint8

const (
	lcLive   lcState = iota // usable (or unknown — treated as usable)
	lcClosed                // closed on every path reaching here
	lcStale                 // page-head slice invalidated by a later NextPage
)

// lcFacts is a block-entry/exit environment: variable states plus, for
// page-head slices, which cursor variable each one came from.
type lcFacts struct {
	state map[*types.Var]lcState
	heads map[*types.Var]*types.Var // head slice -> producing cursor
}

func (e lcFacts) clone() lcFacts {
	n := lcFacts{
		state: make(map[*types.Var]lcState, len(e.state)),
		heads: make(map[*types.Var]*types.Var, len(e.heads)),
	}
	for k, v := range e.state {
		n.state[k] = v
	}
	for k, v := range e.heads {
		n.heads[k] = v
	}
	return n
}

// join merges predecessor exits must-style: a variable keeps a non-live
// state only when every predecessor agrees; disagreement decays to live
// (never report from a path-dependent state).
func lcJoin(a, b lcFacts) lcFacts {
	out := lcFacts{state: make(map[*types.Var]lcState), heads: make(map[*types.Var]*types.Var)}
	for v, s := range a.state {
		if b.state[v] == s {
			out.state[v] = s
		}
	}
	for v, c := range a.heads {
		if b.heads[v] == c {
			out.heads[v] = c
		}
	}
	return out
}

func lcEqual(a, b lcFacts) bool {
	if len(a.state) != len(b.state) || len(a.heads) != len(b.heads) {
		return false
	}
	for v, s := range a.state {
		if b.state[v] != s {
			return false
		}
	}
	for v, c := range a.heads {
		if b.heads[v] != c {
			return false
		}
	}
	return true
}

// inModulePkg reports whether the named type is declared in this module
// (the analyzers run over both the real tree and fixture modules sharing
// the "neurdb" module path).
func inModulePkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "neurdb" || strings.HasPrefix(pkg.Path(), "neurdb/")
}

// closableVar reports whether v holds one of the tracked finalizable types
// (directly or behind a pointer).
func closableVar(v *types.Var) bool {
	t := v.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && closableNames[n.Obj().Name()] && inModulePkg(n.Obj().Pkg())
}

type lifecycleScan struct {
	pass *Pass
	info *types.Info
	// reported dedups diagnostics across the reporting walk.
	reported map[token.Pos]bool
}

func runLifecycle(pass *Pass) error {
	s := &lifecycleScan{pass: pass, info: pass.TypesInfo, reported: make(map[token.Pos]bool)}
	var bodies []*ast.BlockStmt
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies = append(bodies, fd.Body)
			}
		}
		// Function literals get their own graphs (never inlined).
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				bodies = append(bodies, lit.Body)
			}
			return true
		})
	}
	for _, body := range bodies {
		s.analyze(body)
	}
	return nil
}

func (s *lifecycleScan) analyze(body *ast.BlockStmt) {
	ir := BuildIR(body)
	if ir.Imprecise {
		return
	}
	blocks := ir.ReversePostorder()
	idx := make(map[*Block]int, len(blocks))
	for i, b := range blocks {
		idx[b] = i
	}
	preds := make([][]int, len(blocks))
	for i, b := range blocks {
		for _, succ := range b.Succs {
			if j, ok := idx[succ]; ok {
				preds[j] = append(preds[j], i)
			}
		}
	}

	entry := make([]lcFacts, len(blocks))
	exit := make([]lcFacts, len(blocks))
	for i := range blocks {
		entry[i] = lcFacts{state: map[*types.Var]lcState{}, heads: map[*types.Var]*types.Var{}}
		exit[i] = entry[i]
	}

	// Fixpoint without reporting, then one reporting pass from the stable
	// entry states — otherwise intermediate iterations double-report.
	for changed := true; changed; {
		changed = false
		for i, b := range blocks {
			in := lcFacts{state: map[*types.Var]lcState{}, heads: map[*types.Var]*types.Var{}}
			for k, p := range preds[i] {
				if k == 0 {
					in = exit[p].clone()
				} else {
					in = lcJoin(in, exit[p])
				}
			}
			out := in.clone()
			for _, n := range b.Nodes {
				s.transfer(&out, n, nil)
			}
			if !lcEqual(out, exit[i]) {
				exit[i] = out
				changed = true
			}
			entry[i] = in
		}
	}
	for i, b := range blocks {
		env := entry[i].clone()
		for _, n := range b.Nodes {
			s.transfer(&env, n, s.reportUse)
		}
	}
}

// reportUse fires a diagnostic for a bad use discovered during the
// reporting pass.
func (s *lifecycleScan) reportUse(pos token.Pos, format string, args ...any) {
	if s.reported[pos] {
		return
	}
	s.reported[pos] = true
	s.pass.Reportf(pos, format, args...)
}

// localVar resolves an identifier to the local/param variable it denotes.
func (s *lifecycleScan) localVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := s.info.Uses[id]
	if obj == nil {
		obj = s.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// transfer pushes one block node through the environment, invoking report
// (when non-nil) for uses of dead values. Nodes are walked in syntactic
// order with function literals skipped.
func (s *lifecycleScan) transfer(env *lcFacts, node ast.Node, report func(token.Pos, string, ...any)) {
	switch n := node.(type) {
	case *ast.DeferStmt:
		// Deferred calls run at function exit: `defer rows.Close()` does
		// not close rows here. Argument evaluation is immediate but a
		// deferred call's arguments are overwhelmingly the receiver
		// itself; skipping avoids false "use after close" on
		// close-then-defer-close cleanup chains.
		return
	case *ast.GoStmt:
		// A goroutine's body runs concurrently on its own timeline;
		// batchalias owns cross-goroutine escapes.
		return
	case *ast.RangeStmt:
		// Per-iteration binding only (see ir.go conventions): fresh
		// values for the key/value vars.
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if v := s.localVar(e); v != nil {
				delete(env.state, v)
				delete(env.heads, v)
			}
		}
		return
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				s.transferAssign(env, m, report, walk)
				return false
			case *ast.CallExpr:
				s.transferCall(env, m, report, walk)
				return false
			case *ast.Ident:
				s.checkIdentUse(env, m, report)
			}
			return true
		})
	}
	walk(node)
}

// transferAssign evaluates RHS effects/uses, then rebinds the LHS.
func (s *lifecycleScan) transferAssign(env *lcFacts, as *ast.AssignStmt, report func(token.Pos, string, ...any), walk func(ast.Node)) {
	// NextPage binding: `id, heads, ok := cur.NextPage()` — invalidate the
	// cursor's previous heads, then bind the new slice vars to the cursor.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
			if cur := s.nextPageCursor(call); cur != nil {
				s.invalidateHeads(env, cur)
				for _, lhs := range as.Lhs {
					v := s.localVar(lhs)
					if v == nil {
						continue
					}
					delete(env.state, v)
					delete(env.heads, v)
					if _, ok := v.Type().Underlying().(*types.Slice); ok {
						env.heads[v] = cur
					}
				}
				return
			}
		}
	}
	for _, rhs := range as.Rhs {
		walk(rhs)
	}
	for i, lhs := range as.Lhs {
		v := s.localVar(lhs)
		if v == nil {
			// Writing a dead value into a field/global is batchalias's
			// domain (escape), not lifecycle's; but keep walking so
			// index expressions etc. get their uses checked.
			walk(lhs)
			continue
		}
		// Rebinding kills any previous state; aliasing another tracked
		// var copies its binding (heads aliases stay invalidatable).
		delete(env.state, v)
		delete(env.heads, v)
		if len(as.Rhs) == len(as.Lhs) {
			if w := s.localVar(as.Rhs[i]); w != nil {
				if cur, ok := env.heads[w]; ok {
					env.heads[v] = cur
				}
				if st, ok := env.state[w]; ok {
					env.state[v] = st
				}
			}
		}
	}
}

// nextPageCursor returns the cursor variable of a `cur.NextPage()` call.
func (s *lifecycleScan) nextPageCursor(call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NextPage" {
		return nil
	}
	if fn := calleeFunc(s.info, call); fn == nil || !inModulePkg(fn.Pkg()) {
		return nil
	}
	return s.localVar(sel.X)
}

func (s *lifecycleScan) invalidateHeads(env *lcFacts, cur *types.Var) {
	for h, c := range env.heads {
		if c == cur {
			env.state[h] = lcStale
		}
	}
}

// transferCall handles close/finalize kills and NextPage invalidation, and
// checks receiver/argument uses.
func (s *lifecycleScan) transferCall(env *lcFacts, call *ast.CallExpr, report func(token.Pos, string, ...any), walk func(ast.Node)) {
	// Standalone NextPage (result discarded or used inline) still
	// invalidates previously bound heads.
	if cur := s.nextPageCursor(call); cur != nil {
		s.invalidateHeads(env, cur)
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if v := s.localVar(sel.X); v != nil && closableVar(v) {
			switch sel.Sel.Name {
			case "Close":
				for _, arg := range call.Args {
					walk(arg)
				}
				env.state[v] = lcClosed
				return
			case "Err":
				// Err after Close is part of the contract.
				return
			default:
				if report != nil && env.state[v] == lcClosed {
					report(sel.Pos(), "%s.%s() after %s.Close(): the value is finalized on every path reaching this use", sel.X.(*ast.Ident).Name, sel.Sel.Name, sel.X.(*ast.Ident).Name)
				}
			}
		} else {
			walk(sel.X)
		}
	} else {
		walk(call.Fun)
	}

	// Helper calls that close a parameter (interprocedural, summary facts).
	if fn := calleeFunc(s.info, call); fn != nil && inModulePkg(fn.Pkg()) {
		var sum Summary
		if s.pass.ImportAnalyzerFact(summariesName, fn.Pkg().Path(), summaryKey(fn), &sum) {
			if sum.closesParam(-1) {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if v := s.localVar(sel.X); v != nil && closableVar(v) {
						env.state[v] = lcClosed
					}
				}
			}
			for i, arg := range call.Args {
				if !sum.closesParam(i) {
					continue
				}
				if v := s.localVar(arg); v != nil && closableVar(v) {
					walk(arg)
					env.state[v] = lcClosed
				}
			}
		}
	}
	for _, arg := range call.Args {
		walk(arg)
	}
}

// checkIdentUse reports reads of dead values: any read of a stale page-head
// slice, and closable values passed onward after Close (method calls are
// reported at the call site by transferCall).
func (s *lifecycleScan) checkIdentUse(env *lcFacts, id *ast.Ident, report func(token.Pos, string, ...any)) {
	if report == nil {
		return
	}
	v, _ := s.info.Uses[id].(*types.Var)
	if v == nil {
		return
	}
	switch env.state[v] {
	case lcStale:
		report(id.Pos(), "page-head slice %s is reused after a later NextPage on its cursor recycled it; copy the heads you need before advancing", id.Name)
	}
}
