// Package lint implements neurdb-lint: a suite of static analyzers that
// mechanically enforce the engine's concurrency, determinism, and durability
// invariants (docs/ARCHITECTURE.md "Static analysis & enforced invariants").
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer owns a Run function over a typed, parsed package — but is built
// on the standard library alone so the module stays dependency-free. The
// cmd/neurdb-lint binary drives these analyzers either standalone or under
// `go vet -vettool` (it speaks the vet unitchecker protocol).
//
// Each analyzer guards one invariant and is pinned to the package(s) whose
// layer owns that invariant; outside its packages it reports nothing, so
// running the whole suite over the whole tree is always safe.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by `neurdb-lint help`.
	Doc string
	// Packages pins the analyzer to import paths. An entry matches the
	// package with exactly that path; a trailing "/..." matches the
	// subtree. Empty means every package.
	Packages []string
	// Facts marks an analyzer that exports cross-package facts: it runs on
	// every in-module package (reporting only where it AppliesTo) so its
	// facts exist for downstream importers.
	Facts bool
	// IncludeTests extends the analysis to _test.go files. Most invariants
	// are production-code contracts, but some (error-comparison hygiene)
	// matter exactly as much in tests.
	IncludeTests bool
	Run          func(*Pass) error
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/") {
				return true
			}
		} else if pkgPath == p {
			return true
		}
	}
	return false
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one package's parsed and typechecked representation through
// an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	ignores     map[string]map[int]map[string]bool // file -> line -> analyzer set
	// report is false when the analyzer runs purely to generate facts on a
	// package outside its pin set; Reportf is then a no-op.
	report bool
	runner *Runner
	// exports is the current package's accumulating fact set, shared by
	// every pass over the package so later analyzers see facts exported by
	// earlier ones (the summaries pass runs first; see All).
	exports PackageFacts
}

// ExportFact publishes a fact under the given object key for downstream
// packages (and for this package's own later ImportFact calls). The value
// must be JSON-serializable.
func (p *Pass) ExportFact(key string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("lint: %s: fact %q not serializable: %v", p.Analyzer.Name, key, err))
	}
	m := p.exports[p.Analyzer.Name]
	if m == nil {
		m = make(map[string]json.RawMessage)
		p.exports[p.Analyzer.Name] = m
	}
	m[key] = data
}

// ImportFact looks up a fact exported under this analyzer's name by the
// named package and decodes it into out, reporting whether it existed.
func (p *Pass) ImportFact(pkgPath, key string, out any) bool {
	return p.ImportAnalyzerFact(p.Analyzer.Name, pkgPath, key, out)
}

// ImportAnalyzerFact looks up a fact exported by any analyzer — the
// summaries pass publishes interprocedural function summaries that several
// analyzers consume. The named package may be the package currently under
// analysis; its own exports are visible immediately.
func (p *Pass) ImportAnalyzerFact(analyzer, pkgPath, key string, out any) bool {
	var raw json.RawMessage
	if pkgPath == p.Pkg.Path() {
		raw = p.exports[analyzer][key]
	} else if p.runner != nil {
		if facts := p.runner.FactsOf(pkgPath); facts != nil {
			raw = facts[analyzer][key]
		}
	}
	if raw == nil {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Reportf records a diagnostic unless a `//lint:ignore <name> <reason>`
// directive on the same line or the line above suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if !p.report || p.ignored(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) ignored(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.ignores[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		if names, ok := lines[line]; ok {
			if names[p.Analyzer.Name] || names["all"] {
				return true
			}
		}
	}
	return false
}

// buildIgnores indexes `//lint:ignore <name> <reason>` directives. A
// directive suppresses the named analyzer (or every analyzer, for "all") on
// its own line and on the line directly below it, so both trailing and
// leading comment placement work.
func buildIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				position := fset.Position(c.Pos())
				lines := out[position.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[position.Filename] = lines
				}
				names := lines[position.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[position.Line] = names
				}
				names[fields[0]] = true
			}
		}
	}
	return out
}

// Package bundles everything needed to analyze one package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RunAnalyzers runs every applicable analyzer over one package in
// isolation: a convenience wrapper over a single-package Runner with no
// cross-package fact sources. Analyzers degrade gracefully to package-local
// precision when a dependency's facts are unavailable, so this remains
// correct — multi-package drivers use a Runner directly.
func RunAnalyzers(p *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := NewRunner(analyzers).Run(p)
	return diags, err
}

// All returns the full neurdb-lint analyzer suite. Summaries runs first by
// construction: passes execute in slice order and share one fact store per
// package, so its interprocedural function summaries are already exported
// when the same package's gateorder and lifecycle passes import them.
func All() []*Analyzer {
	return []*Analyzer{
		Summaries,
		StripeLock,
		CommitGate,
		BatchAlias,
		DetOrder,
		IOErr,
		Lifecycle,
		AtomicMix,
		ErrCmp,
		Exhaustive,
		GateOrder,
	}
}
