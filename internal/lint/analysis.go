// Package lint implements neurdb-lint: a suite of static analyzers that
// mechanically enforce the engine's concurrency, determinism, and durability
// invariants (docs/ARCHITECTURE.md "Static analysis & enforced invariants").
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer owns a Run function over a typed, parsed package — but is built
// on the standard library alone so the module stays dependency-free. The
// cmd/neurdb-lint binary drives these analyzers either standalone or under
// `go vet -vettool` (it speaks the vet unitchecker protocol).
//
// Each analyzer guards one invariant and is pinned to the package(s) whose
// layer owns that invariant; outside its packages it reports nothing, so
// running the whole suite over the whole tree is always safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	// Doc is a one-line description shown by `neurdb-lint help`.
	Doc string
	// Packages pins the analyzer to import paths. An entry matches the
	// package with exactly that path; a trailing "/..." matches the
	// subtree. Empty means every package.
	Packages []string
	Run      func(*Pass) error
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/") {
				return true
			}
		} else if pkgPath == p {
			return true
		}
	}
	return false
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one package's parsed and typechecked representation through
// an analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	ignores     map[string]map[int]map[string]bool // file -> line -> analyzer set
}

// Reportf records a diagnostic unless a `//lint:ignore <name> <reason>`
// directive on the same line or the line above suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.ignored(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) ignored(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.ignores[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		if names, ok := lines[line]; ok {
			if names[p.Analyzer.Name] || names["all"] {
				return true
			}
		}
	}
	return false
}

// buildIgnores indexes `//lint:ignore <name> <reason>` directives. A
// directive suppresses the named analyzer (or every analyzer, for "all") on
// its own line and on the line directly below it, so both trailing and
// leading comment placement work.
func buildIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	out := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				position := fset.Position(c.Pos())
				lines := out[position.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					out[position.Filename] = lines
				}
				names := lines[position.Line]
				if names == nil {
					names = make(map[string]bool)
					lines[position.Line] = names
				}
				names[fields[0]] = true
			}
		}
	}
	return out
}

// Package bundles everything needed to analyze one package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RunAnalyzers runs every applicable analyzer over the package and returns
// the diagnostics sorted by position. Test files are excluded: the
// invariants are production-code contracts, and under `go vet` the
// compilation unit for a package's test variant includes its _test.go
// files.
func RunAnalyzers(p *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	files := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	ignores := buildIgnores(p.Fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		if !a.AppliesTo(p.Pkg.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
			ignores:   ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// All returns the full neurdb-lint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		StripeLock,
		CommitGate,
		BatchAlias,
		DetOrder,
		IOErr,
	}
}
