package lint_test

import (
	"go/build"
	"os"
	"path/filepath"
	"testing"

	"neurdb/internal/lint"
)

// writeModule materializes a throwaway module under t.TempDir so loader
// behavior can be probed without touching the real tree or the fixture
// module. files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoaderBuildTagFiltering: the loader must filter files through the
// build context exactly like `go build` — a file behind `//go:build
// invariants` is invisible by default and visible when the tag is set.
// The invariants tag is the one that matters in this repo: the runtime
// assertion counterparts of the analyzers live behind it, and the loader
// picking up the wrong half (or both halves, a redeclaration error) would
// make standalone lint runs diverge from the vet driver.
func TestLoaderBuildTagFiltering(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module tagmod\n\ngo 1.22\n",
		"base.go": "package tagmod\n\nfunc Arm() bool { return armed }\n",
		"inv_on.go": "//go:build invariants\n\npackage tagmod\n\n" +
			"const armed = true\nconst invariantsBuild = true\n",
		"inv_off.go": "//go:build !invariants\n\npackage tagmod\n\n" +
			"const armed = false\n",
	})

	load := func(t *testing.T) *lint.Package {
		t.Helper()
		l, err := lint.NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := l.Load("tagmod")
		if err != nil {
			t.Fatal(err)
		}
		return pkg
	}

	t.Run("default excludes tagged file", func(t *testing.T) {
		pkg := load(t)
		if pkg.Pkg.Scope().Lookup("invariantsBuild") != nil {
			t.Error("file behind //go:build invariants was loaded without the tag")
		}
		if pkg.Pkg.Scope().Lookup("armed") == nil {
			t.Error("the !invariants counterpart file was not loaded")
		}
	})

	t.Run("tag set includes tagged file", func(t *testing.T) {
		saved := build.Default.BuildTags
		build.Default.BuildTags = append(append([]string(nil), saved...), "invariants")
		defer func() { build.Default.BuildTags = saved }()

		pkg := load(t)
		if pkg.Pkg.Scope().Lookup("invariantsBuild") == nil {
			t.Error("file behind //go:build invariants was not loaded with the tag set")
		}
	})
}

// TestLoaderTestFileExclusion: _test.go files are never part of the
// package the loader builds — the analyzers enforce production-code
// contracts, and a test file referencing undefined symbols (legal for a
// file the loader must skip) must not break typechecking.
func TestLoaderTestFileExclusion(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":      "module exmod\n\ngo 1.22\n",
		"lib.go":      "package exmod\n\nfunc Lib() int { return 1 }\n",
		"lib_test.go": "package exmod\n\nconst fromTestFile = undefinedEverywhere\n",
	})
	l, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.Load("exmod")
	if err != nil {
		t.Fatalf("loading alongside a broken _test.go failed: %v", err)
	}
	if pkg.Pkg.Scope().Lookup("fromTestFile") != nil {
		t.Error("_test.go contents leaked into the loaded package")
	}
	if len(pkg.Files) != 1 {
		t.Errorf("got %d files, want 1 (lib.go only)", len(pkg.Files))
	}
}

// TestLoaderWalkSkips: Walk must not descend into testdata, hidden, or
// underscore directories — those hold fixture modules and editor litter
// that do not belong to the module under analysis.
func TestLoaderWalkSkips(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":                  "module walkmod\n\ngo 1.22\n",
		"root.go":                 "package walkmod\n",
		"sub/sub.go":              "package sub\n",
		"testdata/fix/fix.go":     "package fix\n",
		"sub/testdata/f/f.go":     "package f\n",
		".hidden/h.go":            "package h\n",
		"_scratch/s.go":           "package s\n",
		"empty/README.md":         "no go files here\n",
		"onlytest/only_test.go":   "package onlytest\n",
		"tagged/invariant_off.go": "//go:build neverset\n\npackage tagged\n",
	})
	l, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Walk()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"walkmod", "walkmod/sub"}
	if len(paths) != len(want) {
		t.Fatalf("Walk() = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Walk() = %v, want %v", paths, want)
		}
	}
}

// FuzzLoadPackage: the loader must be panic-free on malformed Go source —
// it runs over whatever a contributor's working tree contains, and a parse
// or typecheck problem must surface as an error, never a crash. Errors are
// expected and ignored; only panics fail.
func FuzzLoadPackage(f *testing.F) {
	f.Add("package p\n\nfunc F() int { return 1 }\n")
	f.Add("package p\n\nfunc broken( {\n")
	f.Add("package p\n\nvar x = undefinedName\n")
	f.Add("pack age p\n")
	f.Add("")
	f.Add("//go:build invariants\n\npackage p\n")
	f.Add("package p\n\nimport \"no/such/pkg\"\n\nvar _ = pkg.X\n")
	f.Add("package p\n\ntype T struct { T }\n")
	f.Add("package p\n\x00\xff\xfe\n")
	f.Add("package p\n//lint:ignore\n//lint:closedenum\nfunc F() {}\n")
	f.Fuzz(func(t *testing.T, src string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fuzzmod\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fuzzed.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := lint.NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Parse/typecheck errors are the expected outcome for most inputs;
		// the property under test is the absence of panics.
		_, _ = l.Load("fuzzmod")
	})
}
