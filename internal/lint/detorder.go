package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetOrder enforces the byte-identical-output guarantee (PR 4/PR 5: parallel
// execution equals serial, wire encodings are golden-file stable, WAL
// checkpoints and monitor snapshots diff cleanly across runs): in the
// determinism-critical packages, a `for range` over a map must not feed an
// order-sensitive sink, because Go randomizes map iteration order per run.
//
// A map-range loop is reported when its body, in iteration order:
//   - accumulates into a variable declared outside the loop via
//     `x = append(x, ...)` or `x = f(x, ...)` (the encoder idiom
//     `dst = appendString(dst, k)` included) — unless the accumulation is a
//     commutative numeric reduction (+, *, |, &, ^, min, max);
//   - concatenates onto an outer string (`s += ...`);
//   - writes to a stream (methods named Write*, fmt.Fprint*);
//   - sends on a channel.
//
// Loops that only build other maps, index into keyed structures, or reduce
// commutatively are order-insensitive and not reported, and so is the fix
// idiom itself: a loop that collects into a slice which is then sorted later
// in the same function. For everything else the fix is to collect the keys,
// sort them, and range over the slice — or, for a loop that is
// order-insensitive for a subtler reason, a `//lint:ignore detorder <reason>`
// directive with the reason on record.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "flag map iteration feeding order-sensitive sinks in determinism-critical packages",
	Packages: []string{
		"neurdb/internal/executor",
		"neurdb/internal/wire",
		"neurdb/internal/wal",
		"neurdb/internal/monitor",
		"neurdb/internal/stats",
	},
	Run: runDetOrder,
}

func runDetOrder(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			body := fd.Body
			ast.Inspect(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				sink, accum, found := orderSensitiveSink(info, rng)
				if !found {
					return true
				}
				// The fix idiom — collect keys, sort, range the slice —
				// is itself an accumulation into a map-ordered slice;
				// exempt it when the accumulator is sorted after the loop.
				if accum != "" && sortedAfter(body, rng.End(), accum) {
					return true
				}
				pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop %s; sort the keys first (or document order-insensitivity with //lint:ignore detorder <reason>)", sink)
				return true
			})
		}
	}
	return nil
}

// sortedAfter reports whether, after pos, the function body sorts the named
// accumulator: a call to anything in the sort/slices packages, or a function
// whose name mentions Sort, with the accumulator as an argument.
func sortedAfter(body *ast.BlockStmt, pos token.Pos, accum string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		name, recv := selName(call)
		sortish := isPkgSel(recv, "sort") || isPkgSel(recv, "slices") || strings.Contains(name, "Sort")
		if !sortish {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == accum {
				found = true
			}
		}
		return !found
	})
	return found
}

// orderSensitiveSink scans the loop body for the first order-sensitive sink,
// returning its description and, for accumulation sinks, the accumulator
// identifier (so the collect-then-sort idiom can be exempted).
func orderSensitiveSink(info *types.Info, rng *ast.RangeStmt) (sink, accum string, found bool) {
	declaredOutside := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink, found = "sends on a channel in iteration order", true
			return false
		case *ast.AssignStmt:
			if s, id, ok := classifyAccumulation(info, n, declaredOutside); ok {
				sink, accum, found = s, id, true
				return false
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if s, ok := streamWrite(call); ok {
					sink, found = s, true
					return false
				}
			}
		}
		return true
	})
	return sink, accum, found
}

// classifyAccumulation detects `x = f(x, ...)`, `x = append(x, ...)`,
// `x op= v`, and `x = x op v` onto an identifier declared outside the loop,
// exempting commutative numeric reductions.
func classifyAccumulation(info *types.Info, as *ast.AssignStmt, outside func(*ast.Ident) bool) (string, string, bool) {
	if len(as.Lhs) != 1 {
		return "", "", false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok || !outside(lhs) {
		return "", "", false
	}
	commutativeOp := func(op token.Token) bool {
		switch op {
		case token.ADD, token.MUL, token.OR, token.AND, token.XOR,
			token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN:
			return true
		}
		return false
	}
	isString := func() bool {
		t := info.TypeOf(lhs)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	hit := func() (string, string, bool) {
		return "accumulates into " + lhs.Name + " in iteration order", lhs.Name, true
	}
	switch as.Tok {
	case token.ASSIGN:
		switch rhs := as.Rhs[0].(type) {
		case *ast.CallExpr:
			// f(x, ...): the previous value feeds the next — an
			// ordered accumulation (append, dst = appendString(dst, k)).
			for _, arg := range rhs.Args {
				if id, ok := arg.(*ast.Ident); ok && id.Name == lhs.Name {
					name, _ := selName(rhs)
					if name == "min" || name == "max" {
						return "", "", false
					}
					return hit()
				}
			}
		case *ast.BinaryExpr:
			usesLHS := false
			ast.Inspect(rhs, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == lhs.Name {
					usesLHS = true
				}
				return true
			})
			if usesLHS && (!commutativeOp(rhs.Op) || isString()) {
				return hit()
			}
		}
	case token.DEFINE:
	default:
		// Compound assignment: x op= v.
		if !commutativeOp(as.Tok) || isString() {
			return hit()
		}
	}
	return "", "", false
}

// streamWrite detects writes to byte streams: methods named Write* and the
// fmt.Fprint family.
func streamWrite(call *ast.CallExpr) (string, bool) {
	name, recv := selName(call)
	switch {
	case strings.HasPrefix(name, "Write"):
		return "writes to a stream in iteration order", true
	case (name == "Fprintf" || name == "Fprintln" || name == "Fprint") && isPkgSel(recv, "fmt"):
		return "writes formatted output in iteration order", true
	}
	return "", false
}
