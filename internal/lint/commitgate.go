package lint

import (
	"go/ast"
	"go/token"
)

// CommitGate enforces the WAL commit protocol (PR 7, internal/txn +
// internal/wal):
//
//   - a redo record is appended (AppendCommit) only inside a commit-gate
//     read-lock window (GateRLock ... GateRUnlock), so a checkpoint cut
//     under the exclusive gate never observes a half-published commit;
//   - no version stamp (SetBeginTS/SetEndTS) or status publication
//     (.status / statusOf[...] = StatusCommitted) happens before the WAL
//     append in a committing function — a transaction must never be
//     observable before its redo record is in the log;
//   - a function that appends a commit record also calls Sync: the commit
//     may only be acknowledged after the record is durable;
//   - publishing StatusCommitted in a function that never appends at all
//     bypasses the log entirely;
//   - in internal/wal, os.Rename is preceded by a Sync call in the same
//     function: renaming a file into its final name publishes it, and
//     publishing before fsync is a torn-checkpoint hole.
//
// The checks are linear over each function's call/assignment events in
// source order — exact for the straight-line commit paths they guard.
var CommitGate = &Analyzer{
	Name:     "commitgate",
	Doc:      "flag commit paths that stamp/publish before the gated WAL append, ack before Sync, or rename before fsync",
	Packages: []string{"neurdb/internal/txn", "neurdb/internal/wal"},
	Run:      runCommitGate,
}

// gateEvent is one protocol-relevant occurrence inside a function body, in
// source order.
type gateEvent struct {
	kind string // "rlock", "runlock", "append", "sync", "stamp", "publish", "rename"
	pos  token.Pos
}

func selName(call *ast.CallExpr) (string, ast.Expr) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name, fun.X
	case *ast.Ident:
		return fun.Name, nil
	}
	return "", nil
}

func isPkgSel(x ast.Expr, pkg string) bool {
	id, ok := x.(*ast.Ident)
	return ok && id.Name == pkg
}

// collectGateEvents walks the function body in source order. Function
// literals are skipped: they run at another time, on their own event
// timeline.
func collectGateEvents(body *ast.BlockStmt) []gateEvent {
	var events []gateEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			name, recv := selName(n)
			switch name {
			case "GateRLock":
				events = append(events, gateEvent{"rlock", n.Pos()})
			case "GateRUnlock":
				events = append(events, gateEvent{"runlock", n.Pos()})
			case "AppendCommit":
				events = append(events, gateEvent{"append", n.Pos()})
			case "Sync":
				events = append(events, gateEvent{"sync", n.Pos()})
			case "SetBeginTS", "SetEndTS":
				events = append(events, gateEvent{"stamp", n.Pos()})
			case "Rename":
				if isPkgSel(recv, "os") {
					events = append(events, gateEvent{"rename", n.Pos()})
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				published := false
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					published = l.Sel.Name == "status"
				case *ast.IndexExpr:
					if sel, ok := l.X.(*ast.SelectorExpr); ok {
						published = sel.Sel.Name == "statusOf"
					} else if id, ok := l.X.(*ast.Ident); ok {
						published = id.Name == "statusOf"
					}
				}
				if !published || i >= len(n.Rhs) {
					continue
				}
				if committedIdent(n.Rhs[i]) {
					events = append(events, gateEvent{"publish", lhs.Pos()})
				}
			}
		}
		return true
	})
	return events
}

func committedIdent(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "StatusCommitted"
	case *ast.SelectorExpr:
		return e.Sel.Name == "StatusCommitted"
	}
	return false
}

func runCommitGate(pass *Pass) error {
	inWal := pass.Pkg.Path() == "neurdb/internal/wal"
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			events := collectGateEvents(fd.Body)
			if inWal {
				// Rule: publish-by-rename only after fsync.
				synced := false
				for _, e := range events {
					switch e.kind {
					case "sync":
						synced = true
					case "rename":
						if !synced {
							pass.Reportf(e.pos, "os.Rename publishes a file without a preceding Sync in this function; rename-before-fsync is a torn-file hole on crash")
						}
					}
				}
				continue
			}

			var appendPos []token.Pos
			for _, e := range events {
				if e.kind == "append" {
					appendPos = append(appendPos, e.pos)
				}
			}
			var publishes []gateEvent
			for _, e := range events {
				if e.kind == "publish" {
					publishes = append(publishes, e)
				}
			}
			if len(appendPos) == 0 {
				// Rule: StatusCommitted must not be published by a
				// function that never appends a redo record.
				for _, e := range publishes {
					pass.Reportf(e.pos, "publishes StatusCommitted without any WAL AppendCommit in this function; a commit must be logged before it becomes observable")
				}
				continue
			}

			firstAppend := appendPos[0]
			gateDepth := 0
			sawSync := false
			for _, e := range events {
				switch e.kind {
				case "rlock":
					gateDepth++
				case "runlock":
					gateDepth--
				case "append":
					if gateDepth <= 0 {
						pass.Reportf(e.pos, "AppendCommit outside a commit-gate RLock window; the append must happen under GateRLock so a checkpoint cut never sees a half-published commit")
					}
				case "stamp", "publish":
					if e.pos < firstAppend {
						pass.Reportf(e.pos, "stamps/publishes transaction state before the WAL append; the redo record must reach the log before the commit becomes observable")
					}
				case "sync":
					sawSync = true
				}
			}
			if !sawSync {
				pass.Reportf(firstAppend, "commit path appends to the WAL but never calls Sync; the commit must not be acknowledged before its record is durable")
			}
		}
	}
	return nil
}
