package lint

import (
	"go/ast"
)

// StripeLock enforces the deadlock-freedom-by-construction invariant of the
// striped write path (PR 6, internal/txn): a transaction holds at most one
// write-claim stripe at a time. Acquiring a second stripe — directly via
// lockStripe / stripes[i].mu.Lock, or by calling a function that acquires
// one — while a stripe is held reintroduces the lock-ordering problem the
// stripe design eliminated, so it is reported at the acquisition site.
//
// The analysis is syntactic but branch-aware: it tracks stripe-lock depth
// through blocks, branches, and loops in source order, treats an acquire in
// an `if` condition whose body terminates (the TryLock fast path) as not
// escaping the `if`, and propagates "may acquire a stripe" through the
// package-local call graph so indirect acquisitions are caught too.
var StripeLock = &Analyzer{
	Name:     "stripelock",
	Doc:      "flag acquiring a second write stripe while one is held (internal/txn)",
	Packages: []string{"neurdb/internal/txn"},
	Run:      runStripeLock,
}

// isStripeMutexSel reports whether expr is a selector of the form
// `<...>.stripes[i].mu` — the claim-stripe mutex.
func isStripeMutexSel(expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "mu" {
		return false
	}
	idx, ok := sel.X.(*ast.IndexExpr)
	if !ok {
		return false
	}
	switch x := idx.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "stripes"
	case *ast.Ident:
		return x.Name == "stripes"
	}
	return false
}

// classifyStripeCall classifies a call as a stripe acquire, release, or
// neither, and returns the bare callee name for call-graph edges.
func classifyStripeCall(call *ast.CallExpr) (acquire, release bool, callee string) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = fun.Name
	case *ast.SelectorExpr:
		callee = fun.Sel.Name
		switch fun.Sel.Name {
		case "Lock", "TryLock":
			if isStripeMutexSel(fun.X) {
				return true, false, callee
			}
		case "Unlock":
			if isStripeMutexSel(fun.X) {
				return false, true, callee
			}
		}
	}
	switch callee {
	case "lockStripe":
		return true, false, callee
	case "unlockStripe":
		return false, true, callee
	}
	return false, false, callee
}

// stripeScan walks one function body tracking stripe-lock depth.
type stripeScan struct {
	pass *Pass
	// mayAcquire maps package-local function names to whether they
	// (transitively) acquire a stripe.
	mayAcquire map[string]bool
	// funcs queues function literals for their own depth-0 scan.
	funcs []*ast.FuncLit
}

// scanExprs processes the call events inside exprs in source order at the
// given depth, reporting double acquisitions, and returns the new depth.
// Function literals are queued for independent scanning, not inlined: a
// closure body runs on its own goroutine or at a later time, so it starts
// with no stripe held.
func (s *stripeScan) scanExprs(depth int, exprs ...ast.Expr) int {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				s.funcs = append(s.funcs, n)
				return false
			case *ast.CallExpr:
				// Arguments evaluate before the call: recurse first.
				for _, arg := range n.Args {
					depth = s.scanExprs(depth, arg)
				}
				acq, rel, callee := classifyStripeCall(n)
				switch {
				case acq:
					if depth > 0 {
						s.pass.Reportf(n.Pos(), "acquires a write stripe while another stripe is held; a txn must hold at most one stripe at a time (deadlock-freedom by construction)")
					}
					depth++
				case rel:
					if depth > 0 {
						depth--
					}
				default:
					if depth > 0 && s.mayAcquire[callee] {
						s.pass.Reportf(n.Pos(), "calls %s, which acquires a write stripe, while a stripe is held; a txn must hold at most one stripe at a time", callee)
					}
				}
				return false
			}
			return true
		})
	}
	return depth
}

// terminates reports whether the statement list ends in an unconditional
// transfer of control (return or panic).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// scanStmts processes a statement list at the given entry depth and returns
// the exit depth.
func (s *stripeScan) scanStmts(depth int, stmts []ast.Stmt) int {
	for _, st := range stmts {
		depth = s.scanStmt(depth, st)
	}
	return depth
}

func (s *stripeScan) scanStmt(depth int, st ast.Stmt) int {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return s.scanExprs(depth, st.X)
	case *ast.AssignStmt:
		depth = s.scanExprs(depth, st.Rhs...)
		return s.scanExprs(depth, st.Lhs...)
	case *ast.ReturnStmt:
		return s.scanExprs(depth, st.Results...)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					depth = s.scanExprs(depth, vs.Values...)
				}
			}
		}
		return depth
	case *ast.DeferStmt:
		// A deferred release happens at function exit, not here; a
		// deferred stripe acquire is nonsensical. Scan only the
		// arguments (evaluated now), not the call effect.
		return s.scanExprs(depth, st.Call.Args...)
	case *ast.GoStmt:
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.funcs = append(s.funcs, lit)
		}
		return s.scanExprs(depth, st.Call.Args...)
	case *ast.SendStmt:
		depth = s.scanExprs(depth, st.Value)
		return s.scanExprs(depth, st.Chan)
	case *ast.IncDecStmt:
		return s.scanExprs(depth, st.X)
	case *ast.LabeledStmt:
		return s.scanStmt(depth, st.Stmt)
	case *ast.BlockStmt:
		return s.scanStmts(depth, st.List)
	case *ast.IfStmt:
		depth = s.scanStmt(depth, st.Init)
		// The TryLock fast path: an acquire in the condition whose
		// success branch returns does not hold past the if for the
		// fall-through path.
		before := depth
		depth = s.scanExprs(depth, st.Cond)
		condAcquired := depth - before
		bodyEntry := depth
		bodyExit := s.scanStmts(bodyEntry, st.Body.List)
		bodyTerm := terminates(st.Body.List)
		afterCond := depth
		if condAcquired > 0 && bodyTerm {
			// The acquired-path returned inside the body; the
			// fall-through continues without the lock.
			afterCond = before
		}
		if st.Else != nil {
			elseExit := s.scanStmt(afterCond, st.Else)
			elseTerm := false
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				elseTerm = terminates(blk.List)
			}
			switch {
			case bodyTerm && elseTerm:
				return afterCond
			case bodyTerm:
				return elseExit
			case elseTerm:
				return bodyExit
			default:
				return min(bodyExit, elseExit)
			}
		}
		if bodyTerm {
			return afterCond
		}
		return min(bodyExit, afterCond)
	case *ast.ForStmt:
		depth = s.scanStmt(depth, st.Init)
		depth = s.scanExprs(depth, st.Cond)
		exit := s.scanStmts(depth, st.Body.List)
		exit = s.scanStmt(exit, st.Post)
		if exit > depth {
			// The body leaks a stripe across iterations: scan once
			// more starting at the leaked depth so the second
			// iteration's acquire is reported.
			s.scanStmts(exit, st.Body.List)
			return exit
		}
		return depth
	case *ast.RangeStmt:
		depth = s.scanExprs(depth, st.X)
		exit := s.scanStmts(depth, st.Body.List)
		if exit > depth {
			s.scanStmts(exit, st.Body.List)
			return exit
		}
		return depth
	case *ast.SwitchStmt:
		depth = s.scanStmt(depth, st.Init)
		depth = s.scanExprs(depth, st.Tag)
		return s.scanCases(depth, st.Body)
	case *ast.TypeSwitchStmt:
		depth = s.scanStmt(depth, st.Init)
		depth = s.scanStmt(depth, st.Assign)
		return s.scanCases(depth, st.Body)
	case *ast.SelectStmt:
		return s.scanCases(depth, st.Body)
	}
	return depth
}

// scanCases scans each case clause from the shared entry depth and merges
// the exits of the non-terminating branches with min (lenient: precision
// over recall, a linter must not cry wolf).
func (s *stripeScan) scanCases(depth int, body *ast.BlockStmt) int {
	exit := -1
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			depth = s.scanExprs(depth, c.List...)
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				depth = s.scanStmt(depth, c.Comm)
			}
			stmts = c.Body
		}
		e := s.scanStmts(depth, stmts)
		if !terminates(stmts) && (exit == -1 || e < exit) {
			exit = e
		}
	}
	if exit == -1 {
		return depth
	}
	return exit
}

// directlyAcquires reports whether the function body contains a direct
// stripe acquisition anywhere (conditionally or not).
func directlyAcquires(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if acq, _, _ := classifyStripeCall(call); acq {
				found = true
			}
		}
		return !found
	})
	return found
}

func runStripeLock(pass *Pass) error {
	// Pass 1: package-local call graph and direct-acquire set.
	calls := make(map[string][]string) // function name -> callee names
	acquires := make(map[string]bool)
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			name := fd.Name.Name
			if directlyAcquires(fd.Body) {
				acquires[name] = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, _, callee := classifyStripeCall(call); callee != "" {
						calls[name] = append(calls[name], callee)
					}
				}
				return true
			})
		}
	}
	// Fixpoint: a function may acquire if any callee may acquire. Matching
	// is by bare name — package-local and conservative.
	for changed := true; changed; {
		changed = false
		for name, callees := range calls {
			if acquires[name] {
				continue
			}
			for _, c := range callees {
				if acquires[c] {
					acquires[name] = true
					changed = true
					break
				}
			}
		}
	}

	// Pass 2: depth scan of every function (and queued literals).
	for _, fd := range decls {
		s := &stripeScan{pass: pass, mayAcquire: acquires}
		s.scanStmts(0, fd.Body.List)
		for len(s.funcs) > 0 {
			lit := s.funcs[0]
			s.funcs = s.funcs[1:]
			s.scanStmts(0, lit.Body.List)
		}
	}
	return nil
}
