// Package linttest runs neurdb-lint analyzers over fixture modules and
// checks their diagnostics against `// want analyzer:"regexp"` expectations
// embedded in the fixture source — the same discipline as
// golang.org/x/tools/go/analysis/analysistest, scoped to this module's
// stdlib-only framework.
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"neurdb/internal/lint"
)

// wantRe matches one expectation inside a want comment:
// analyzerName:"regexp" with \" escapes allowed inside the pattern.
var wantRe = regexp.MustCompile(`([a-z]+):"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads pkgPath from the fixture module at moduleDir, runs the analyzer,
// and reports a test error for every diagnostic without a matching
// expectation and every expectation without a matching diagnostic.
//
// The whole suite executes under one Runner — fact-generating passes
// included, with dependencies of the fixture package analyzed lazily — so
// interprocedural expectations (callee summaries, closed-enum facts from a
// sibling fixture package) resolve exactly as they do in the real drivers.
// Only the named analyzer's diagnostics are checked.
func Run(t *testing.T, moduleDir string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	suite := lint.All()
	present := false
	for _, s := range suite {
		if s == a {
			present = true
			break
		}
	}
	if !present {
		suite = append(suite, a)
	}
	runner := lint.NewRunner(suite)
	runner.Module = loader.Module
	runner.LoadDep = loader.Load
	allDiags, _, err := runner.Run(pkg)
	if err != nil {
		t.Fatal(err)
	}
	var diags []lint.Diagnostic
	for _, d := range allDiags {
		if d.Analyzer == a.Name {
			diags = append(diags, d)
		}
	}

	wants := collect(t, a.Name, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// collect gathers the analyzer's want expectations from the package's
// comments.
func collect(t *testing.T, analyzer string, pkg *lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					if m[1] != analyzer {
						continue
					}
					re, err := regexp.Compile(m[2])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[2], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// Diagnostics returns the analyzer suite's formatted diagnostics for
// pkgPath in the fixture module — used by tests that assert on exact
// rendered output.
func Diagnostics(moduleDir, pkgPath string) ([]string, error) {
	loader, err := lint.NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		return nil, err
	}
	runner := lint.NewRunner(lint.All())
	runner.Module = loader.Module
	runner.LoadDep = loader.Load
	diags, _, err := runner.Run(pkg)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message))
	}
	return out, nil
}
