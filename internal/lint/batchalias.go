package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BatchAlias enforces the scratch-batch reuse contract (PR 3, rel.Batch):
// executor batches and page-head slices are recycled across iterations, so
// retaining the batch pointer, its Rows slice, or a BatchCursor.NextPage
// head slice past the iteration that produced it silently corrupts results
// once the producer refills the buffer. The analyzer flags escapes of those
// values into struct fields, package-level variables, or goroutine closures
// unless the value is explicitly cloned (append/copy/Clone/New*).
//
// Retaining individual rel.Row elements is allowed: the batch contract
// guarantees rows placed in a batch stay valid after refills (producers
// pass storage-owned rows or allocate fresh ones).
var BatchAlias = &Analyzer{
	Name: "batchalias",
	Doc:  "flag rel.Batch Rows slices or page-head slices escaping the iteration that produced them without a clone",
	Packages: []string{
		"neurdb",
		"neurdb/internal/executor",
		"neurdb/internal/server",
	},
	Run: runBatchAlias,
}

const batchType = "neurdb/internal/rel.Batch"

func isBatchPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && p.Elem().String() == batchType
}

// unwrap strips parens and slice expressions: b.Rows[:n] aliases the same
// backing array as b.Rows.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// isBatchRowsSel reports whether e is `<batch>.Rows` (possibly re-sliced)
// where <batch> has type rel.Batch or *rel.Batch.
func isBatchRowsSel(info *types.Info, e ast.Expr) bool {
	sel, ok := unwrap(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rows" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.String() == batchType
}

// isHeadSliceCall reports whether e is a direct NextPage() call — the
// page-head slice a storage.BatchCursor recycles every page.
func isHeadSliceCall(e ast.Expr) bool {
	call, ok := unwrap(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	name, _ := selName(call)
	return name == "NextPage"
}

// allowedClone reports whether the RHS makes its own copy: the append and
// copy builtins, make, nil, composite literals, or a constructor/cloner
// call (New*/Clone*/Copy*/Make*).
func allowedClone(e ast.Expr) bool {
	switch x := unwrap(e).(type) {
	case *ast.Ident:
		return x.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, isLit := x.X.(*ast.CompositeLit)
		return isLit
	case *ast.CallExpr:
		name, _ := selName(x)
		if name == "append" || name == "copy" || name == "make" {
			return true
		}
		for _, prefix := range []string{"New", "Clone", "Copy", "Make"} {
			if strings.HasPrefix(name, prefix) {
				return true
			}
		}
	}
	return false
}

// escapingLHS classifies an assignment target that outlives the current
// iteration: a struct-field write or a package-level variable.
func escapingLHS(info *types.Info, lhs ast.Expr) (string, bool) {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		// Selecting a field (not a package-qualified name).
		if sel := info.Selections[l]; sel != nil && sel.Kind() == types.FieldVal {
			return "struct field " + l.Sel.Name, true
		}
	case *ast.Ident:
		obj := info.Defs[l]
		if obj == nil {
			obj = info.Uses[l]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "package variable " + l.Name, true
		}
	}
	return "", false
}

func runBatchAlias(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					target, escapes := escapingLHS(info, lhs)
					if !escapes {
						continue
					}
					// Multi-value call assignments pair every LHS
					// with the single RHS call.
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					} else {
						continue
					}
					checkAliasRHS(pass, target, lhs, rhs)
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoCapture(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

func checkAliasRHS(pass *Pass, target string, lhs, rhs ast.Expr) {
	info := pass.TypesInfo
	if allowedClone(rhs) {
		return
	}
	switch {
	case isBatchRowsSel(info, rhs):
		pass.Reportf(lhs.Pos(), "%s retains a rel.Batch Rows slice past the iteration that produced it; the batch is recycled on the next fill — clone with append([]rel.Row(nil), b.Rows...) or copy", target)
	case isBatchPtr(info.TypeOf(rhs)):
		pass.Reportf(lhs.Pos(), "%s retains a *rel.Batch produced elsewhere; the producer recycles it on the next iteration — store a clone or own the batch", target)
	case isHeadSliceCall(rhs):
		// Multi-value assignments pair each LHS with the whole call;
		// only the slice-typed target retains the recycled heads.
		if _, ok := info.TypeOf(lhs).(*types.Slice); ok {
			pass.Reportf(lhs.Pos(), "%s retains the page-head slice returned by NextPage; the cursor recycles it every page — copy the heads you need", target)
		}
	}
}

// checkGoCapture flags goroutines that capture a *rel.Batch declared
// outside the closure: the spawning iteration continues refilling the batch
// while the goroutine reads it.
func checkGoCapture(pass *Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || !isBatchPtr(v.Type()) {
			return true
		}
		// Declared outside the literal?
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			pass.Reportf(id.Pos(), "goroutine captures *rel.Batch %s declared outside the closure; the spawning loop recycles the batch while the goroutine reads it — pass a clone or move ownership", id.Name)
		}
		return true
	})
}
