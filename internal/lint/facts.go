package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"go/types"
)

// PackageFacts is everything a package's analysis exports for downstream
// packages: analyzer name -> object key -> JSON-encoded fact. Facts are how
// invariants cross package boundaries — an enum's closed member set, a
// function's may-acquire-stripe summary — without the consumer re-analyzing
// the producer's source. Under `go vet -vettool` they serialize into the
// unitchecker's vetx files (the go command hands each unit its dependencies'
// files via PackageVetx and collects ours via VetxOutput); standalone and in
// linttest they live in the Runner's in-memory store.
type PackageFacts map[string]map[string]json.RawMessage

// factsHeader versions the vetx payload so a stale cache entry written by an
// older neurdb-lint decodes to "no facts" instead of garbage.
const factsHeader = "neurdb-lint-facts/v1\n"

// Encode serializes the fact set (deterministically — vetx files are cached
// by content hash).
func (f PackageFacts) Encode() []byte {
	data, err := json.Marshal(f)
	if err != nil {
		// Facts are plain JSON-able structs by construction; a marshal
		// failure is an analyzer bug.
		panic(fmt.Sprintf("lint: encoding facts: %v", err))
	}
	return append([]byte(factsHeader), data...)
}

// DecodeFacts parses a vetx payload. Unrecognized or empty payloads (for
// example the empty files written for stdlib units, or files from an older
// tool version) decode to nil, not an error: missing facts degrade an
// interprocedural analyzer to package-local precision, they never fail it.
func DecodeFacts(data []byte) PackageFacts {
	rest, ok := strings.CutPrefix(string(data), factsHeader)
	if !ok {
		return nil
	}
	var f PackageFacts
	if err := json.Unmarshal([]byte(rest), &f); err != nil {
		return nil
	}
	return f
}

// FuncKey returns the fact key for a function or method: "Name" for
// package-level functions, "Recv.Name" for methods (pointer receivers
// stripped), so producer and consumer derive the same key from a
// *types.Func regardless of which side resolved it.
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// FieldKey returns the fact key for a struct field: "Type.field".
func FieldKey(typeName, field string) string { return typeName + "." + field }

// Runner drives the analyzer suite over one or more packages with a shared
// cross-package fact store. Facts for a dependency come from whichever
// source the mode provides: preloaded vetx files (vet mode, via SetFacts) or
// lazy analysis of the dependency's source (standalone and linttest, via
// LoadDep).
type Runner struct {
	Analyzers []*Analyzer
	// LoadDep, when set, loads an in-module dependency package so its
	// fact-generating analyzers can run on demand. nil in vet mode, where
	// the go command schedules dependencies first and hands us their vetx
	// files instead.
	LoadDep func(path string) (*Package, error)
	// Module scopes lazy fact generation to in-module import paths;
	// stdlib dependencies have no neurdb facts and are never loaded.
	Module string

	facts     map[string]PackageFacts
	analyzing map[string]bool
}

// NewRunner returns a Runner over the given analyzers.
func NewRunner(analyzers []*Analyzer) *Runner {
	return &Runner{
		Analyzers: analyzers,
		facts:     make(map[string]PackageFacts),
		analyzing: make(map[string]bool),
	}
}

// SetFacts installs a dependency's decoded fact set (vet mode).
func (r *Runner) SetFacts(pkgPath string, f PackageFacts) {
	r.facts[pkgPath] = f
}

// FactsOf returns pkgPath's facts, generating them by analyzing the package
// if a loader is available and they are not yet known. Import cycles are
// impossible in valid Go, but the analyzing guard keeps a corrupted input
// from recursing forever.
func (r *Runner) FactsOf(pkgPath string) PackageFacts {
	if f, ok := r.facts[pkgPath]; ok {
		return f
	}
	if r.LoadDep == nil || r.analyzing[pkgPath] || !r.inModule(pkgPath) {
		return nil
	}
	p, err := r.LoadDep(pkgPath)
	if err != nil {
		return nil
	}
	if _, _, err := r.Run(p); err != nil {
		return nil
	}
	return r.facts[pkgPath]
}

func (r *Runner) inModule(pkgPath string) bool {
	return r.Module != "" && (pkgPath == r.Module || strings.HasPrefix(pkgPath, r.Module+"/"))
}

// Run analyzes one package: every analyzer that either applies to it (and
// may report) or generates facts (and must run even where it reports
// nothing, so downstream packages see its summaries) executes over the
// package. Returns position-sorted diagnostics and the package's exported
// facts, which are also retained in the runner's store for later packages.
func (r *Runner) Run(p *Package) ([]Diagnostic, PackageFacts, error) {
	path := p.Pkg.Path()
	r.analyzing[path] = true
	defer delete(r.analyzing, path)

	// Production files: the invariants are production-code contracts, and
	// under `go vet` a test variant's compilation unit includes _test.go
	// files. Analyzers that opt in (IncludeTests) see the full file set —
	// error-handling idioms matter in tests too.
	var prod []int
	for i, f := range p.Files {
		if !strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			prod = append(prod, i)
		}
	}
	ignores := buildIgnores(p.Fset, p.Files)

	exported := make(PackageFacts)
	var out []Diagnostic
	for _, a := range r.Analyzers {
		applies := a.AppliesTo(path)
		if !applies && !a.Facts {
			continue
		}
		files := p.Files
		if !a.IncludeTests {
			files = files[:0:0]
			for _, i := range prod {
				files = append(files, p.Files[i])
			}
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      p.Fset,
			Files:     files,
			Pkg:       p.Pkg,
			TypesInfo: p.Info,
			ignores:   ignores,
			report:    applies,
			runner:    r,
			exports:   exported,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	r.facts[path] = exported
	return out, exported, nil
}
