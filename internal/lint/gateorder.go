package lint

import (
	"go/ast"
	"go/token"
)

// GateOrder enforces the engine's lock order between the two commit-path
// lock tiers: write-claim stripes (txn) are always acquired BEFORE the WAL
// commit gate (wal.Log.GateRLock/GateLock). Committers hold stripes and
// briefly RLock the gate; the checkpointer write-locks the gate alone.
// Acquiring a stripe while the gate is held inverts the order against the
// checkpointer and deadlocks the commit path under contention.
//
// The analysis is a forward may-analysis over the lint IR: gate depth joins
// by max across predecessors, and a stripe acquisition — directly, or via
// any call whose interprocedural summary says it may acquire (summaries
// facts, cross-package) — at a point where the gate may be held is
// reported.
var GateOrder = &Analyzer{
	Name: "gateorder",
	Doc:  "flag stripe acquisition while the WAL commit gate is held (lock order: stripe before gate), interprocedurally",
	Packages: []string{
		"neurdb",
		"neurdb/internal/txn",
		"neurdb/internal/wal",
		"neurdb/internal/executor",
	},
	Run: runGateOrder,
}

func isGateRelease(name string) bool {
	return name == "GateRUnlock" || name == "GateUnlock"
}

const gateDepthCap = 2 // depth beyond 2 adds no information; capping bounds the lattice

type gateScan struct {
	pass     *Pass
	reported map[token.Pos]bool
}

func runGateOrder(pass *Pass) error {
	s := &gateScan{pass: pass, reported: make(map[token.Pos]bool)}
	var bodies []*ast.BlockStmt
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies = append(bodies, fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				bodies = append(bodies, lit.Body)
			}
			return true
		})
	}
	for _, body := range bodies {
		s.analyze(body)
	}
	return nil
}

func (s *gateScan) analyze(body *ast.BlockStmt) {
	ir := BuildIR(body)
	blocks := ir.ReversePostorder()
	idx := make(map[*Block]int, len(blocks))
	for i, b := range blocks {
		idx[b] = i
	}
	preds := make([][]int, len(blocks))
	for i, b := range blocks {
		for _, succ := range b.Succs {
			if j, ok := idx[succ]; ok {
				preds[j] = append(preds[j], i)
			}
		}
	}

	entry := make([]int, len(blocks))
	exit := make([]int, len(blocks))
	for changed := true; changed; {
		changed = false
		for i, b := range blocks {
			in := 0
			for _, p := range preds[i] {
				if exit[p] > in {
					in = exit[p]
				}
			}
			entry[i] = in
			out := in
			for _, n := range b.Nodes {
				out = s.transfer(out, n, false)
			}
			if out != exit[i] {
				exit[i] = out
				changed = true
			}
		}
	}
	for i, b := range blocks {
		depth := entry[i]
		for _, n := range b.Nodes {
			depth = s.transfer(depth, n, true)
		}
	}
}

// transfer pushes one node's gate effects through the depth, reporting
// stripe acquisitions under a held gate when report is set.
func (s *gateScan) transfer(depth int, node ast.Node, report bool) int {
	if _, ok := node.(*ast.RangeStmt); ok {
		return depth // binding only; X was emitted in the predecessor
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _ := selName(call)
		switch {
		case isGateCall(name):
			if depth < gateDepthCap {
				depth++
			}
		case isGateRelease(name):
			if depth > 0 {
				depth--
			}
		}
		if depth == 0 {
			return true
		}
		if acq, _, callee := classifyStripeCall(call); acq {
			s.report(report, call.Pos(), "%s acquires a write-claim stripe while the WAL commit gate is held; lock order is stripe before gate", callee)
			return true
		}
		// Interprocedural: a callee that may acquire a stripe somewhere
		// down its call chain is just as much an inversion.
		if fn := calleeFunc(s.pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && inModulePkg(fn.Pkg()) {
			var sum Summary
			if s.pass.ImportAnalyzerFact(summariesName, fn.Pkg().Path(), summaryKey(fn), &sum) && sum.AcquiresStripe {
				s.report(report, call.Pos(), "call to %s may acquire a write-claim stripe (via its call chain) while the WAL commit gate is held; lock order is stripe before gate", summaryKey(fn))
			}
		}
		return true
	})
	return depth
}

func (s *gateScan) report(enabled bool, pos token.Pos, format string, args ...any) {
	if !enabled || s.reported[pos] {
		return
	}
	s.reported[pos] = true
	s.pass.Reportf(pos, format, args...)
}
