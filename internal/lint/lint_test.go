package lint_test

import (
	"testing"

	"neurdb/internal/lint"
	"neurdb/internal/lint/linttest"
)

// The fixture module seeds at least one true positive per analyzer alongside
// clean counterparts (the blessed idioms) that must stay diagnostic-free;
// linttest checks both directions against the `// want` annotations.

const badmod = "testdata/badmod"

func TestStripeLock(t *testing.T) {
	linttest.Run(t, badmod, lint.StripeLock, "neurdb/internal/txn")
}

func TestCommitGateTxn(t *testing.T) {
	linttest.Run(t, badmod, lint.CommitGate, "neurdb/internal/txn")
}

func TestCommitGateWal(t *testing.T) {
	linttest.Run(t, badmod, lint.CommitGate, "neurdb/internal/wal")
}

func TestIOErr(t *testing.T) {
	linttest.Run(t, badmod, lint.IOErr, "neurdb/internal/wal")
}

func TestDetOrder(t *testing.T) {
	linttest.Run(t, badmod, lint.DetOrder, "neurdb/internal/wire")
}

func TestBatchAlias(t *testing.T) {
	linttest.Run(t, badmod, lint.BatchAlias, "neurdb/internal/executor")
}

func TestLifecycleClient(t *testing.T) {
	linttest.Run(t, badmod, lint.Lifecycle, "neurdb/client")
}

// TestLifecycleCrossPackage proves the interprocedural path: the close
// happens inside client.Drain, and only the summaries fact carries it into
// the server fixture.
func TestLifecycleCrossPackage(t *testing.T) {
	linttest.Run(t, badmod, lint.Lifecycle, "neurdb/internal/server")
}

func TestLifecycleExecutor(t *testing.T) {
	linttest.Run(t, badmod, lint.Lifecycle, "neurdb/internal/executor")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, badmod, lint.AtomicMix, "neurdb/internal/storage")
}

// TestAtomicMixCrossPackage: the field's atomic discipline is a fact of the
// defining package; the plain write lives in the importer.
func TestAtomicMixCrossPackage(t *testing.T) {
	linttest.Run(t, badmod, lint.AtomicMix, "neurdb/internal/executor")
}

func TestErrCmp(t *testing.T) {
	linttest.Run(t, badmod, lint.ErrCmp, "neurdb/internal/errs")
}

func TestExhaustiveEnum(t *testing.T) {
	linttest.Run(t, badmod, lint.Exhaustive, "neurdb/internal/wire")
}

func TestExhaustiveInterface(t *testing.T) {
	linttest.Run(t, badmod, lint.Exhaustive, "neurdb/internal/rel")
}

// TestExhaustiveCrossPackage: the closed set of wire.Op reaches the
// executor's dispatch switch as an imported fact.
func TestExhaustiveCrossPackage(t *testing.T) {
	linttest.Run(t, badmod, lint.Exhaustive, "neurdb/internal/executor")
}

func TestGateOrder(t *testing.T) {
	linttest.Run(t, badmod, lint.GateOrder, "neurdb/internal/executor")
}

// TestGateOrderTxnClean: the txn fixture's commit protocol holds the gate
// but never claims a stripe under it — gateorder must stay silent there.
func TestGateOrderTxnClean(t *testing.T) {
	linttest.Run(t, badmod, lint.GateOrder, "neurdb/internal/txn")
}

// TestAnalyzerPinning proves an analyzer is inert outside its packages: the
// executor fixture is full of batch aliasing, but stripelock (pinned to
// internal/txn) must not report there — running the whole suite over the
// whole tree stays safe.
func TestAnalyzerPinning(t *testing.T) {
	if lint.StripeLock.AppliesTo("neurdb/internal/executor") {
		t.Fatal("stripelock should not apply outside internal/txn")
	}
	if !lint.StripeLock.AppliesTo("neurdb/internal/txn") {
		t.Fatal("stripelock should apply to internal/txn")
	}
	if !lint.IOErr.AppliesTo("neurdb") {
		t.Fatal("ioerr should apply to the root package")
	}
	if lint.IOErr.AppliesTo("neurdbx") {
		t.Fatal("package matching must be path-segment exact")
	}
}
