package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive enforces closed-set switch coverage. A type opts in with a
// `//lint:closedenum` directive on its declaration; the analyzer then
// exports the type's member set as a fact from its defining package — every
// package-level constant of the type, or for an interface every
// implementing named type declared alongside it — and flags any switch
// without a default clause that fails to cover every member, wherever in
// the module the switch lives.
//
// This is what keeps a new wire opcode, plan-node kind, or rel value tag
// from silently falling through a dispatch switch three packages away: the
// build stays green, the lint run does not.
var Exhaustive = &Analyzer{
	Name:     "exhaustive",
	Doc:      "flag default-less switches over //lint:closedenum types that miss members",
	Packages: []string{"neurdb", "neurdb/..."},
	Facts:    true,
	Run:      runExhaustive,
}

// enumFact is the closed member set of one marked type.
type enumFact struct {
	// Members is sorted; const names for value enums, implementing type
	// names for interfaces.
	Members   []string
	Interface bool
}

const closedEnumDirective = "lint:closedenum"

// closedEnumDecls returns the names of types in this package marked with
// //lint:closedenum.
func closedEnumDecls(files []*ast.File) map[string]bool {
	marked := make(map[string]bool)
	hasDirective := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), closedEnumDirective) {
					return true
				}
			}
		}
		return false
	}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(gd.Doc, ts.Doc, ts.Comment) {
					marked[ts.Name.Name] = true
				}
			}
		}
	}
	return marked
}

// enumMembers computes the closed set for a marked type in its defining
// package: constants of the type, or named types implementing the
// interface (by value or pointer). The blank identifier never counts.
func enumMembers(pkg *types.Package, name string) (enumFact, bool) {
	obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return enumFact{}, false
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return enumFact{}, false
	}
	var fact enumFact
	if iface, ok := named.Underlying().(*types.Interface); ok {
		fact.Interface = true
		for _, n := range pkg.Scope().Names() {
			tn, ok := pkg.Scope().Lookup(n).(*types.TypeName)
			if !ok || tn == obj || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
				fact.Members = append(fact.Members, tn.Name())
			}
		}
	} else {
		for _, n := range pkg.Scope().Names() {
			c, ok := pkg.Scope().Lookup(n).(*types.Const)
			if !ok || c.Name() == "_" {
				continue
			}
			if types.Identical(c.Type(), named) {
				fact.Members = append(fact.Members, c.Name())
			}
		}
	}
	sort.Strings(fact.Members)
	return fact, len(fact.Members) > 0
}

func runExhaustive(pass *Pass) error {
	info := pass.TypesInfo

	// Export facts for this package's marked types.
	for name := range closedEnumDecls(pass.Files) {
		if fact, ok := enumMembers(pass.Pkg, name); ok {
			pass.ExportFact(name, fact)
		}
	}

	// enumOf resolves a type to its closed-enum fact, local or imported.
	enumOf := func(t types.Type) (string, enumFact, bool) {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil || !inModulePkg(named.Obj().Pkg()) {
			return "", enumFact{}, false
		}
		var fact enumFact
		if pass.ImportFact(named.Obj().Pkg().Path(), named.Obj().Name(), &fact) {
			qual := named.Obj().Name()
			if named.Obj().Pkg() != pass.Pkg {
				qual = named.Obj().Pkg().Name() + "." + qual
			}
			return qual, fact, true
		}
		return "", enumFact{}, false
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				t := info.TypeOf(n.Tag)
				if t == nil {
					return true
				}
				name, fact, ok := enumOf(t)
				if !ok || fact.Interface {
					return true
				}
				covered := make(map[string]bool)
				for _, c := range n.Body.List {
					cc := c.(*ast.CaseClause)
					if cc.List == nil {
						return true // default clause: open by design
					}
					for _, e := range cc.List {
						if cn := constName(info, e); cn != "" {
							covered[cn] = true
						}
					}
				}
				reportMissing(pass, n.Pos(), name, fact.Members, covered)
			case *ast.TypeSwitchStmt:
				x := typeSwitchSubject(n)
				if x == nil {
					return true
				}
				t := info.TypeOf(x)
				if t == nil {
					return true
				}
				name, fact, ok := enumOf(t)
				if !ok || !fact.Interface {
					return true
				}
				covered := make(map[string]bool)
				for _, c := range n.Body.List {
					cc := c.(*ast.CaseClause)
					if cc.List == nil {
						return true // default clause: open by design
					}
					for _, e := range cc.List {
						ct := info.TypeOf(e)
						if ct == nil {
							continue
						}
						if p, ok := ct.(*types.Pointer); ok {
							ct = p.Elem()
						}
						if named, ok := ct.(*types.Named); ok {
							covered[named.Obj().Name()] = true
						}
					}
				}
				reportMissing(pass, n.Pos(), name, fact.Members, covered)
			}
			return true
		})
	}
	return nil
}

// constName resolves a case expression to the constant it names.
func constName(info *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	if c, ok := info.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}

// reportMissing flags a default-less switch that fails to cover the closed
// set.
func reportMissing(pass *Pass, pos token.Pos, name string, members []string, covered map[string]bool) {
	var missing []string
	for _, m := range members {
		if !covered[m] {
			missing = append(missing, m)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(pos, "switch over closed enum %s misses %s; cover every member or add a default", name, strings.Join(missing, ", "))
	}
}
