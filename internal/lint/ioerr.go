package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// IOErr enforces the durability contract of the persistence layer (PR 7,
// internal/wal + internal/vfs + the root-package durability surface): an
// error returned by
// Sync, Close, Flush, Rename, Remove, or Truncate on those paths is a
// durability event — a silently dropped one can acknowledge a commit whose
// bytes never reached the platter. The analyzer flags calls to those
// functions used as bare statements (or deferred) when the call returns an
// error that nothing consumes.
//
// An explicit `_ = f.Close()` is accepted: it is a visible, reviewable
// declaration that the error is intentionally dropped (error-path cleanup
// where the original error is already being returned).
var IOErr = &Analyzer{
	Name: "ioerr",
	Doc:  "flag discarded errors from Sync/Close/Flush/Rename/Remove/Truncate in the durability layer",
	Packages: []string{
		"neurdb/internal/wal",
		"neurdb/internal/vfs", // the filesystem seam all durability IO flows through
		"neurdb",              // filtered to durability.go below
	},
	Run: runIOErr,
}

// ioErrFuncs are the durability-relevant operations.
var ioErrFuncs = map[string]bool{
	"Sync":     true,
	"Close":    true,
	"Flush":    true,
	"Rename":   true,
	"Remove":   true,
	"Truncate": true,
}

// returnsError reports whether the call's result type is exactly `error` or
// a tuple whose last element is `error`.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func runIOErr(pass *Pass) error {
	inRoot := pass.Pkg.Path() == "neurdb"
	for _, f := range pass.Files {
		if inRoot {
			// In the root package only the durability surface is held to
			// this standard; session/demo code may drop Close errors.
			name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if name != "durability.go" {
				continue
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			name, _ := selName(call)
			if !ioErrFuncs[name] || !returnsError(pass.TypesInfo, call) {
				return true
			}
			pass.Reportf(call.Pos(), "%s error discarded on a durability path; handle it or make the drop explicit with `_ = ...`", name)
			return true
		})
	}
	return nil
}
