package lint

import (
	"go/ast"
	"go/token"
)

// This file is the dataflow layer under the flow-sensitive analyzers: a
// lightweight control-flow graph ("SSA-lite") built per function body over
// the go/types-checked AST. Blocks hold leaf statements and header
// expressions in evaluation order; compound statements are decomposed into
// blocks and edges. Analyzers run classic worklist dataflow over the graph
// (see ReversePostorder) with whatever lattice their invariant needs —
// lifecycle tracks close-states per local, gateorder tracks lock depths.
//
// Conventions:
//   - A *ast.RangeStmt appearing in a block means only the per-iteration
//     key/value binding; its X was emitted in the predecessor and its Body
//     has its own blocks. Analyzers must not walk into .Body of a node they
//     find in a block (only range headers appear this way).
//   - Function literals are never inlined: a closure runs at another time,
//     so it gets its own FuncIR.
//   - goto sets Imprecise; must-analyses should skip such functions rather
//     than report from an unsound graph. (The engine has no gotos.)

// Block is one straight-line run of nodes with control-flow successors.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// FuncIR is the control-flow graph of one function body.
type FuncIR struct {
	Entry, Exit *Block
	Blocks      []*Block
	// Imprecise is set when the body contains control flow the builder
	// does not model exactly (goto); must-style analyses should bail.
	Imprecise bool
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the canonical iteration order for forward dataflow.
func (ir *FuncIR) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(ir.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(ir.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// BuildIR constructs the control-flow graph of a function body.
func BuildIR(body *ast.BlockStmt) *FuncIR {
	b := &irBuilder{ir: &FuncIR{}}
	b.ir.Entry = b.newBlock()
	b.ir.Exit = b.newBlock()
	b.cur = b.ir.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.ir.Exit)
	return b.ir
}

// frame is one enclosing breakable/continuable construct.
type frame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type irBuilder struct {
	ir     *FuncIR
	cur    *Block
	frames []frame
	// pendingLabel names the construct a LabeledStmt wraps, so labeled
	// break/continue resolve to the right frame.
	pendingLabel string
}

func (b *irBuilder) newBlock() *Block {
	blk := &Block{}
	b.ir.Blocks = append(b.ir.Blocks, blk)
	return blk
}

func (b *irBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *irBuilder) emit(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the pending label for the construct being built.
func (b *irBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// dead switches to an unreachable continuation block after a jump.
func (b *irBuilder) dead() {
	b.cur = b.newBlock()
}

// terminatorCall reports whether a call never returns: panic and the
// conventional process/test aborts. Modeling these keeps must-analyses
// precise through `if err != nil { log.Fatal(err) }` guards.
func terminatorCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
			return true
		}
	}
	return false
}

func (b *irBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *irBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
	case *ast.ExprStmt:
		b.emit(s)
		if call, ok := s.X.(*ast.CallExpr); ok && terminatorCall(call) {
			b.edge(b.cur, b.ir.Exit)
			b.dead()
		}
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt:
		b.emit(s)
	case *ast.ReturnStmt:
		b.emit(s)
		b.edge(b.cur, b.ir.Exit)
		b.dead()
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.emit(s.Cond)
		condB := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		b.edge(condB, thenB)
		b.cur = thenB
		b.stmts(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(condB, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condB, join)
		}
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.emit(s.Cond)
		cont := b.newBlock() // post-statement block; `continue` target
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join)
		}
		b.frames = append(b.frames, frame{label: label, brk: join, cont: cont})
		b.cur = body
		b.stmts(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, cont)
		b.cur = cont
		b.stmt(s.Post)
		b.edge(b.cur, head)
		b.cur = join
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.emit(s.X)
		head := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, head)
		// The range header in a block stands for the per-iteration
		// key/value binding only (see the package conventions above).
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		b.edge(head, body)
		b.edge(head, join)
		b.frames = append(b.frames, frame{label: label, brk: join, cont: head})
		b.cur = body
		b.stmts(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = join
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.emit(s.Tag)
		b.caseBlocks(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			var hdr []ast.Node
			for _, e := range cc.List {
				hdr = append(hdr, e)
			}
			return hdr, cc.Body, cc.List == nil
		}, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.emit(s.Assign)
		b.caseBlocks(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return nil, cc.Body, cc.List == nil
		}, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		b.caseBlocks(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt, bool) {
			cc := c.(*ast.CommClause)
			var hdr []ast.Node
			if cc.Comm != nil {
				hdr = append(hdr, cc.Comm)
			}
			return hdr, cc.Body, cc.Comm == nil
		}, false)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			for i := len(b.frames) - 1; i >= 0; i-- {
				if s.Label == nil || b.frames[i].label == s.Label.Name {
					b.edge(b.cur, b.frames[i].brk)
					break
				}
			}
			b.dead()
		case token.CONTINUE:
			for i := len(b.frames) - 1; i >= 0; i-- {
				if b.frames[i].cont != nil && (s.Label == nil || b.frames[i].label == s.Label.Name) {
					b.edge(b.cur, b.frames[i].cont)
					break
				}
			}
			b.dead()
		case token.GOTO:
			b.ir.Imprecise = true
			b.edge(b.cur, b.ir.Exit)
			b.dead()
		case token.FALLTHROUGH:
			// Handled structurally by caseBlocks; reaching here means a
			// clause the builder already wired.
		}
	}
}

// caseBlocks wires switch/type-switch/select clauses: every clause branches
// from the current block, non-terminating clauses join afterwards. A
// missing default adds the fall-past edge (switch, select with default
// semantics differ: a default-less select blocks until some clause runs, so
// no fall-past edge is added unless allowFallPast).
func (b *irBuilder) caseBlocks(label string, clauses []ast.Stmt, split func(ast.Stmt) ([]ast.Node, []ast.Stmt, bool), allowFallPast bool) {
	head := b.cur
	join := b.newBlock()
	b.frames = append(b.frames, frame{label: label, brk: join})

	type clause struct {
		blk  *Block
		body []ast.Stmt
	}
	built := make([]clause, 0, len(clauses))
	hasDefault := false
	for _, c := range clauses {
		hdr, body, isDefault := split(c)
		if isDefault {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(head, blk)
		blk.Nodes = append(blk.Nodes, hdr...)
		built = append(built, clause{blk: blk, body: body})
	}
	if (!hasDefault && allowFallPast) || len(clauses) == 0 {
		b.edge(head, join)
	}
	for i, c := range built {
		b.cur = c.blk
		body := c.body
		// A trailing fallthrough transfers into the next clause's body.
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body = body[:n-1]
				fallsThrough = true
			}
		}
		b.stmts(body)
		if fallsThrough && i+1 < len(built) {
			b.edge(b.cur, built[i+1].blk)
			b.dead()
		} else {
			b.edge(b.cur, join)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}
