package lint

import (
	"go/ast"
	"go/types"
)

// Summaries is the interprocedural backbone of the suite: a fact-only pass
// that computes, for every function in every in-module package, which
// engine-level effects the function may (transitively) have — acquire a
// write-claim stripe, take the WAL commit gate, poison the log, or
// close/finalize one of its parameters. The summaries are fixpointed over
// the package-local call graph, folded with imported summaries for
// cross-package callees (dependencies analyze first, under both the vet
// unitchecker schedule and the standalone loader), and exported as facts so
// the flow-sensitive analyzers (gateorder, lifecycle) see through calls
// that cross package boundaries.
//
// It never reports anything itself; its Packages pin is a sentinel no real
// import path matches.
// summariesName breaks the initializer cycle between the Summaries value
// and the passes (including its own) that import its facts by name.
const summariesName = "summaries"

var Summaries = &Analyzer{
	Name:     summariesName,
	Doc:      "fact-only pass: interprocedural function-effect summaries (stripe/gate/poison/close)",
	Packages: []string{"neurdb-lint:facts-only"},
	Facts:    true,
	Run:      runSummaries,
}

// Summary is one function's may-effect set. CloseParams lists the
// parameters the function may close or finalize (0-based; -1 is the method
// receiver), so lifecycle can kill a tracked value that is closed by a
// helper instead of an inline .Close().
type Summary struct {
	AcquiresStripe bool  `json:",omitempty"`
	LocksGate      bool  `json:",omitempty"` // either gate mode: GateRLock or GateLock
	PoisonsLog     bool  `json:",omitempty"`
	CloseParams    []int `json:",omitempty"`
}

func (s Summary) closesParam(i int) bool {
	for _, p := range s.CloseParams {
		if p == i {
			return true
		}
	}
	return false
}

// summaryKey names the fact entry for one function.
func summaryKey(fn *types.Func) string { return FuncKey(fn) }

// calleeFunc resolves a call to its static *types.Func, nil for builtins,
// function values, and interface methods we cannot pin down — those resolve
// to method *types.Func too via Selections, which is exactly what we want
// for interface-typed receivers (the summary of the interface method is
// unknown, so lookup just misses).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPoisonStore matches the WAL poison publication idiom:
// <x>.poison.Store(...) / .CompareAndSwap(...) / .Swap(...).
func isPoisonStore(call *ast.CallExpr) bool {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch fun.Sel.Name {
	case "Store", "CompareAndSwap", "Swap":
	default:
		return false
	}
	inner, ok := fun.X.(*ast.SelectorExpr)
	return ok && inner.Sel.Name == "poison"
}

// isGateCall classifies gate acquisitions by method name.
func isGateCall(name string) bool {
	return name == "GateRLock" || name == "GateLock"
}

// summaryBuilder accumulates per-function summaries to a fixpoint.
type summaryBuilder struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*Summary
}

// paramIndex maps an identifier to its parameter position in fn's
// signature: 0-based parameters, -1 for the receiver, ok=false otherwise.
func paramIndex(info *types.Info, fn *ast.FuncDecl, id *ast.Ident) (int, bool) {
	obj, _ := info.Uses[id].(*types.Var)
	if obj == nil {
		return 0, false
	}
	def, _ := info.Defs[fn.Name].(*types.Func)
	if def == nil {
		return 0, false
	}
	sig := def.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && recv == obj {
		return -1, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i, true
		}
	}
	return 0, false
}

func runSummaries(pass *Pass) error {
	b := &summaryBuilder{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		sums:  make(map[*types.Func]*Summary),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			b.decls[fn] = fd
			b.sums[fn] = &Summary{}
		}
	}

	// Fixpoint: re-scan every function folding callee summaries (local
	// current-iteration values, or imported facts for other packages)
	// until nothing changes. The lattice is finite and monotone.
	for changed := true; changed; {
		changed = false
		for fn, fd := range b.decls {
			if b.scanOnce(fn, fd) {
				changed = true
			}
		}
	}

	for fn, sum := range b.sums {
		if sum.AcquiresStripe || sum.LocksGate || sum.PoisonsLog || len(sum.CloseParams) > 0 {
			pass.ExportFact(summaryKey(fn), sum)
		}
	}
	return nil
}

// lookup resolves a callee's summary: the in-progress local map for
// package-local functions, imported facts otherwise.
func (b *summaryBuilder) lookup(fn *types.Func) (Summary, bool) {
	if s, ok := b.sums[fn]; ok {
		return *s, true
	}
	if fn.Pkg() == nil || fn.Pkg() == b.pass.Pkg {
		return Summary{}, false
	}
	var s Summary
	if b.pass.ImportAnalyzerFact(summariesName, fn.Pkg().Path(), summaryKey(fn), &s) {
		return s, true
	}
	return Summary{}, false
}

// scanOnce folds one function's direct effects and callee summaries into
// its summary, reporting whether the summary grew.
func (b *summaryBuilder) scanOnce(fn *types.Func, fd *ast.FuncDecl) bool {
	sum := b.sums[fn]
	grew := false
	set := func(dst *bool) {
		if !*dst {
			*dst = true
			grew = true
		}
	}
	addClose := func(i int) {
		if !sum.closesParam(i) {
			sum.CloseParams = append(sum.CloseParams, i)
			grew = true
		}
	}
	info := b.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure's effects happen when it runs, not when the
			// enclosing function does; it is summarized separately if it
			// ever becomes addressable. Conservative for goroutines —
			// matching the stripe analyzers' existing convention.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct effects.
		if acq, _, name := classifyStripeCall(call); acq {
			set(&sum.AcquiresStripe)
		} else if isGateCall(name) {
			set(&sum.LocksGate)
		}
		if isPoisonStore(call) {
			set(&sum.PoisonsLog)
		}
		// Close/finalize of a parameter: p.Close() or helper(p) where the
		// helper closes that parameter position.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Close" || sel.Sel.Name == "Finalize") {
			if id, ok := sel.X.(*ast.Ident); ok {
				if i, ok := paramIndex(info, fd, id); ok {
					addClose(i)
				}
			}
		}
		// Callee effects.
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		cs, ok := b.lookup(callee)
		if !ok {
			return true
		}
		if cs.AcquiresStripe {
			set(&sum.AcquiresStripe)
		}
		if cs.LocksGate {
			set(&sum.LocksGate)
		}
		if cs.PoisonsLog {
			set(&sum.PoisonsLog)
		}
		// Parameter closes propagate through argument positions: if the
		// callee closes its receiver, our param used as its receiver is
		// closed; if it closes arg i, our param passed at i is closed.
		if len(cs.CloseParams) > 0 {
			if cs.closesParam(-1) {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if i, ok := paramIndex(info, fd, id); ok {
							addClose(i)
						}
					}
				}
			}
			for ai, arg := range call.Args {
				if !cs.closesParam(ai) {
					continue
				}
				if id, ok := arg.(*ast.Ident); ok {
					if i, ok := paramIndex(info, fd, id); ok {
						addClose(i)
					}
				}
			}
		}
		return true
	})
	return grew
}
