package lint

import (
	"go/ast"
	"go/types"
)

// AtomicMix flags struct fields that are accessed both through sync/atomic
// operations and through plain loads/stores. A field is either always
// atomic or never atomic: one plain write racing an atomic.Load is exactly
// the torn-read class the engine's counters (commit clock, WAL offsets,
// overload gauges) must never hit, and the mix typically appears one
// refactor after a field migrates to atomic access.
//
// It also flags the non-atomic read-modify-write idiom on typed atomics —
// v.Store(v.Load()+1) — which is atomic per-operation but loses updates
// between the two; Add or a CompareAndSwap loop is the correct form.
//
// Atomically-accessed fields are exported as facts keyed "Type.field", so
// a plain access in an importing package is caught even when the atomic
// discipline lives entirely in the defining package.
var AtomicMix = &Analyzer{
	Name:     "atomicmix",
	Doc:      "flag fields accessed both atomically and plainly, and Store(Load()) read-modify-writes on typed atomics",
	Packages: []string{"neurdb", "neurdb/..."},
	Facts:    true,
	Run:      runAtomicMix,
}

// atomicFieldFact marks a field as participating in the atomic access
// discipline of its defining package.
type atomicFieldFact struct {
	Atomic bool
}

// fieldOf resolves a selector expression to the struct field it denotes and
// the named type owning it; ok is false for anything that is not a direct
// field selection on a (possibly embedded, possibly pointer) named struct.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) (*types.Var, *types.Named, bool) {
	v, _ := info.Uses[sel.Sel].(*types.Var)
	if v == nil || !v.IsField() {
		return nil, nil, false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil, nil, false
	}
	t := s.Recv()
	// Walk the implicit field path of an embedded selection to the struct
	// that actually declares the field.
	for _, idx := range s.Index()[:len(s.Index())-1] {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return nil, nil, false
		}
		t = st.Field(idx).Type()
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return v, nil, true
	}
	return v, n, true
}

// atomicPkgCall reports whether call is a sync/atomic package function.
func atomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// typedAtomic reports whether t (possibly behind a pointer) is one of the
// sync/atomic value types (atomic.Int64, atomic.Pointer[T], ...).
func typedAtomic(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

func runAtomicMix(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: collect every field reached through &f inside a sync/atomic
	// call, keyed by its defining type.
	type fieldID struct {
		v *types.Var
		n *types.Named
	}
	atomicFields := make(map[*types.Var]fieldID)
	// inAtomicArg marks the selector nodes that ARE the atomic access, so
	// pass 2 does not count them as plain.
	inAtomicArg := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok || !atomicPkgCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v, n, ok := fieldOf(info, sel); ok {
					atomicFields[v] = fieldID{v, n}
					inAtomicArg[sel] = true
				}
			}
			return true
		})
	}

	// Export facts for fields this package both defines and accesses
	// atomically.
	for _, id := range atomicFields {
		if id.n != nil && id.n.Obj().Pkg() == pass.Pkg {
			pass.ExportFact(FieldKey(id.n.Obj().Name(), id.v.Name()), atomicFieldFact{Atomic: true})
		}
	}

	// isAtomicField consults local knowledge first, then the defining
	// package's exported facts (cross-package discipline).
	isAtomicField := func(v *types.Var, n *types.Named) bool {
		if _, ok := atomicFields[v]; ok {
			return true
		}
		if n == nil || n.Obj().Pkg() == nil || !inModulePkg(n.Obj().Pkg()) {
			return false
		}
		var fact atomicFieldFact
		return pass.ImportFact(n.Obj().Pkg().Path(), FieldKey(n.Obj().Name(), v.Name()), &fact) && fact.Atomic
	}

	// Pass 2: plain accesses of atomic fields, and Store(Load()) RMWs.
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.SelectorExpr:
				if inAtomicArg[node] {
					return false
				}
				v, n, ok := fieldOf(info, node)
				if !ok {
					return true
				}
				if isAtomicField(v, n) {
					pass.Reportf(node.Sel.Pos(), "field %s is accessed atomically elsewhere but plainly here; every access must go through sync/atomic or the atomicity is void", node.Sel.Name)
				}
			case *ast.CallExpr:
				checkAtomicRMW(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkAtomicRMW flags v.Store(f(v.Load())) on a typed atomic: two atomic
// operations do not make an atomic read-modify-write.
func checkAtomicRMW(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return
	}
	recvT := pass.TypesInfo.TypeOf(sel.X)
	if recvT == nil || !typedAtomic(recvT) {
		return
	}
	target := types.ExprString(sel.X)
	found := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		inner, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		isel, ok := inner.Fun.(*ast.SelectorExpr)
		if ok && isel.Sel.Name == "Load" && types.ExprString(isel.X) == target {
			found = true
			return false
		}
		return true
	})
	if found {
		pass.Reportf(call.Pos(), "%s.Store(...%s.Load()...) is not an atomic read-modify-write; use Add or a CompareAndSwap loop", target, target)
	}
}
