// Package client seeds lifecycle violations for the neurdb-lint fixture
// module: finalizable values used after Close, and page-head slices reused
// across NextPage, alongside the clean idioms that must stay silent.
package client

// Rows is a miniature result cursor.
type Rows struct {
	closed bool
	n      int
}

// Next advances the cursor.
func (r *Rows) Next() bool { r.n--; return r.n > 0 && !r.closed }

// Scan copies the current row.
func (r *Rows) Scan(dst *int) { *dst = r.n }

// Close finalizes the cursor and its read transaction.
func (r *Rows) Close() error { r.closed = true; return nil }

// Err reports the terminal error; callable after Close by contract.
func (r *Rows) Err() error { return nil }

// Conn is a miniature server connection.
type Conn struct{ open bool }

// Ping round-trips the connection.
func (c *Conn) Ping() error { return nil }

// Close tears the connection down.
func (c *Conn) Close() error { c.open = false; return nil }

// Drain consumes and closes r. Exported so sibling fixture packages can
// exercise the cross-package close summary.
func Drain(r *Rows) {
	for r.Next() {
	}
	r.Close()
}

// finish is the package-local helper whose summary closes its parameter.
func finish(r *Rows) error { return r.Close() }

// BatchCursor pages through head slices, recycling the backing array on
// every NextPage like the real storage cursor.
type BatchCursor struct {
	heads []uint64
	pages int
}

// NextPage returns the next recycled page-head slice.
func (c *BatchCursor) NextPage() ([]uint64, bool) {
	if c.pages == 0 {
		return nil, false
	}
	c.pages--
	return c.heads, true
}

// useAfterClose reads the cursor after finalizing it.
func useAfterClose(r *Rows) bool {
	r.Close()
	return r.Next() // want lifecycle:"after r.Close"
}

// helperClose finalizes through the package-local helper; the summaries
// pass sees through the call.
func helperClose(r *Rows) bool {
	finish(r)
	return r.Next() // want lifecycle:"after r.Close"
}

// errAfterClose is the blessed teardown: Err stays callable — clean.
func errAfterClose(r *Rows) error {
	r.Close()
	return r.Err()
}

// conditionalClose only closes on one path, so the use is not dominated by
// the kill — clean (must-analysis).
func conditionalClose(r *Rows, done bool) bool {
	if done {
		r.Close()
		return false
	}
	return r.Next()
}

// branchMerge closes on one arm only; after the merge the close is not
// guaranteed — clean.
func branchMerge(r *Rows, done bool) bool {
	if done {
		r.Close()
	}
	return r.Next()
}

// deferClose runs the Close at function exit, not here — clean.
func deferClose(r *Rows) bool {
	defer r.Close()
	return r.Next()
}

// staleHeads reads the first page's heads after the cursor recycled them.
func staleHeads(c *BatchCursor) uint64 {
	heads, ok := c.NextPage()
	if !ok {
		return 0
	}
	first := heads[0]
	c.NextPage()
	return first + heads[0] // want lifecycle:"page-head slice heads is reused"
}

// staleAlias reaches the recycled array through an alias of the heads.
func staleAlias(c *BatchCursor) uint64 {
	heads, ok := c.NextPage()
	if !ok {
		return 0
	}
	kept := heads
	c.NextPage()
	return kept[0] // want lifecycle:"page-head slice kept is reused"
}

// pagedSum rebinds heads every iteration before reading — clean.
func pagedSum(c *BatchCursor) uint64 {
	var total uint64
	for {
		heads, ok := c.NextPage()
		if !ok {
			return total
		}
		total += heads[0]
	}
}

// copiedHeads snapshots what it needs before advancing — clean.
func copiedHeads(c *BatchCursor) uint64 {
	heads, ok := c.NextPage()
	if !ok {
		return 0
	}
	first := append([]uint64(nil), heads...)
	c.NextPage()
	return first[0]
}
