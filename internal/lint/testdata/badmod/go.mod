module neurdb

go 1.24
