// Package rel is a miniature stand-in for neurdb/internal/rel: just enough
// surface for the lint fixtures to typecheck under the same import path the
// analyzers pin to.
package rel

// Row is one tuple.
type Row struct {
	Vals []int64
}

// Batch is a recycled scratch buffer of rows, as in the real engine: the
// Rows slice is reused across fills.
type Batch struct {
	Rows []Row
}
