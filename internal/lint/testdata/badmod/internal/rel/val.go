// Exhaustive interface fixtures: a closed value union whose type switches
// must cover every implementing type or carry a default.
package rel

// Val is the fixture's closed value union: every implementation lives in
// this package.
//
//lint:closedenum
type Val interface{ isVal() }

// IntVal is an integer value.
type IntVal struct{ V int64 }

func (IntVal) isVal() {}

// StrVal is a string value.
type StrVal struct{ S string }

func (StrVal) isVal() {}

// valName misses StrVal with no default.
func valName(v Val) string {
	switch v.(type) { // want exhaustive:"misses StrVal"
	case IntVal:
		return "int"
	}
	return "?"
}

// valKind covers the union — clean.
func valKind(v Val) string {
	switch v.(type) {
	case IntVal:
		return "int"
	case StrVal:
		return "str"
	}
	return "?"
}

// valWidth defaults the tail — clean.
func valWidth(v Val) int {
	switch v.(type) {
	case StrVal:
		return 16
	default:
		return 8
	}
}
