// Package txn seeds stripelock and commitgate violations (and their clean
// counterparts) for the neurdb-lint fixture module.
package txn

import "sync"

// Status mirrors the real transaction status enum.
type Status uint8

// Statuses.
const (
	StatusActive Status = iota
	StatusCommitted
	StatusAborted
)

type writeStripe struct {
	mu sync.Mutex
}

// Txn is a miniature transaction.
type Txn struct {
	ID     uint64
	status Status
	begin  uint64
	end    uint64
}

// SetBeginTS stamps the begin timestamp.
func (t *Txn) SetBeginTS(ts uint64) { t.begin = ts }

// SetEndTS stamps the end timestamp.
func (t *Txn) SetEndTS(ts uint64) { t.end = ts }

// CommitLog mirrors the real WAL commit surface.
type CommitLog interface {
	GateRLock()
	GateRUnlock()
	AppendCommit(cts uint64, ops []byte) (uint64, error)
	Sync(lsn uint64) error
}

// Manager is a miniature transaction manager with striped write claims.
type Manager struct {
	stripes  [8]writeStripe
	log      CommitLog
	statusOf map[uint64]Status
}

// lockStripe is the real engine's TryLock fast path: the acquire in the if
// condition returns on success, so the fall-through Lock is the first
// acquisition on that path — clean.
func (m *Manager) lockStripe(i int) {
	if m.stripes[i].mu.TryLock() {
		return
	}
	m.stripes[i].mu.Lock()
}

func (m *Manager) unlockStripe(i int) {
	m.stripes[i].mu.Unlock()
}

// singleStripe is the disciplined shape: one stripe at a time — clean.
func (m *Manager) singleStripe(i, j int) {
	m.lockStripe(i)
	m.stripes[i].mu.Unlock()
	m.lockStripe(j)
	m.stripes[j].mu.Unlock()
}

// doubleDirect acquires a second stripe while holding the first.
func (m *Manager) doubleDirect(i, j int) {
	m.lockStripe(i)
	m.lockStripe(j) // want stripelock:"acquires a write stripe while another stripe is held"
	m.stripes[j].mu.Unlock()
	m.stripes[i].mu.Unlock()
}

// helperAcquire acquires a stripe; callers holding one must not call it.
func (m *Manager) helperAcquire(i int) {
	m.lockStripe(i)
	m.stripes[i].mu.Unlock()
}

// indirect nests through the package-local call graph.
func (m *Manager) indirect(i, j int) {
	m.lockStripe(i)
	m.helperAcquire(j) // want stripelock:"calls helperAcquire, which acquires a write stripe"
	m.stripes[i].mu.Unlock()
}

// loopLeak never releases inside the loop, so the second iteration acquires
// while the first iteration's stripe is held.
func (m *Manager) loopLeak(n int) {
	for i := 0; i < n; i++ {
		m.lockStripe(i) // want stripelock:"acquires a write stripe while another stripe is held"
	}
}

// suppressed shows the escape hatch: the directive names the analyzer and a
// reason, and the diagnostic is withheld.
func (m *Manager) suppressed(i, j int) {
	m.lockStripe(i)
	//lint:ignore stripelock fixture: proving the suppression path
	m.lockStripe(j)
	m.stripes[j].mu.Unlock()
	m.stripes[i].mu.Unlock()
}

// commitClean is the blessed protocol: gated append, then stamps, then
// publication, then durable sync — clean.
func (m *Manager) commitClean(t *Txn, cts uint64) error {
	m.log.GateRLock()
	lsn, err := m.log.AppendCommit(cts, nil)
	if err != nil {
		m.log.GateRUnlock()
		return err
	}
	t.SetEndTS(cts)
	t.status = StatusCommitted
	m.statusOf[t.ID] = StatusCommitted
	m.log.GateRUnlock()
	return m.log.Sync(lsn)
}

// commitStampEarly stamps the transaction before its redo record exists.
func (m *Manager) commitStampEarly(t *Txn, cts uint64) error {
	t.SetEndTS(cts) // want commitgate:"before the WAL append"
	m.log.GateRLock()
	lsn, err := m.log.AppendCommit(cts, nil)
	m.log.GateRUnlock()
	if err != nil {
		return err
	}
	return m.log.Sync(lsn)
}

// commitNoGate appends outside the commit-gate window.
func (m *Manager) commitNoGate(t *Txn, cts uint64) error {
	lsn, err := m.log.AppendCommit(cts, nil) // want commitgate:"outside a commit-gate RLock window"
	if err != nil {
		return err
	}
	t.status = StatusCommitted
	return m.log.Sync(lsn)
}

// commitNoSync acknowledges without making the record durable.
func (m *Manager) commitNoSync(t *Txn, cts uint64) error {
	m.log.GateRLock()
	_, err := m.log.AppendCommit(cts, nil) // want commitgate:"never calls Sync"
	m.log.GateRUnlock()
	t.status = StatusCommitted
	return err
}

// publishNoAppend makes a commit observable that was never logged.
func (m *Manager) publishNoAppend(t *Txn) {
	t.status = StatusCommitted // want commitgate:"without any WAL AppendCommit"
}
