// Atomicmix fixtures: fields that mix atomic and plain access, the
// Store(Load()) read-modify-write on typed atomics, and the clean
// disciplines that must stay silent.
package storage

import "sync/atomic"

// Meter counts page fills; pages is incremented atomically on the hot path
// but snapshotted plainly — the mix the analyzer exists for.
type Meter struct {
	pages   uint64
	flushes uint64
}

// Inc is the hot-path increment.
func (m *Meter) Inc() { atomic.AddUint64(&m.pages, 1) }

// Snapshot reads the counter without the atomic.
func (m *Meter) Snapshot() uint64 {
	return m.pages // want atomicmix:"accessed atomically elsewhere but plainly here"
}

// IncFlush and FlushCount keep every access atomic — clean.
func (m *Meter) IncFlush() { atomic.AddUint64(&m.flushes, 1) }

// FlushCount reads it back atomically — clean.
func (m *Meter) FlushCount() uint64 { return atomic.LoadUint64(&m.flushes) }

// Gauge is read atomically here and written plainly by the executor
// fixture: the discipline crosses the package boundary as a fact.
type Gauge struct {
	N uint64
}

// Load reads the gauge on the monitoring path.
func (g *Gauge) Load() uint64 { return atomic.LoadUint64(&g.N) }

// seqHolder carries a typed atomic sequence counter.
type seqHolder struct {
	seq atomic.Int64
}

// bumpRacy loses updates between the Load and the Store.
func (s *seqHolder) bumpRacy() {
	s.seq.Store(s.seq.Load() + 1) // want atomicmix:"not an atomic read-modify-write"
}

// bumpClean is the correct form — clean.
func (s *seqHolder) bumpClean() { s.seq.Add(1) }

// rebase stores a value derived from a different source — clean.
func (s *seqHolder) rebase(base int64) { s.seq.Store(base) }
