// Package storage is a miniature stand-in for neurdb/internal/storage.
package storage

// Version is one row version.
type Version struct {
	Data []byte
}

// BatchCursor iterates page head slices, recycling the backing array every
// page like the real cursor does.
type BatchCursor struct {
	heads []*Version
	pages uint32
}

// NextPage returns the next page's id and recycled head slice.
func (c *BatchCursor) NextPage() (uint32, []*Version, bool) {
	if c.pages == 0 {
		return 0, nil, false
	}
	c.pages--
	return c.pages, c.heads, true
}
