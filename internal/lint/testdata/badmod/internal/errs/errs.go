// Package errs seeds errcmp violations for the neurdb-lint fixture module:
// identity comparisons, switches, and concrete assertions on error values
// that break under fmt.Errorf("%w") wrapping, next to the errors.Is/As
// idioms that survive it.
package errs

import (
	"errors"
	"fmt"
	"io"
)

// ErrTorn is the fixture sentinel.
var ErrTorn = errors.New("torn page")

// DecodeError is a concrete error type callers inspect for the offset.
type DecodeError struct{ Off int64 }

func (e *DecodeError) Error() string { return fmt.Sprintf("decode error at %d", e.Off) }

// eqSentinel compares by identity; one wrap and it never matches again.
func eqSentinel(err error) bool {
	return err == ErrTorn // want errcmp:"use errors.Is"
}

// neqStdlib does the same against a stdlib sentinel.
func neqStdlib(err error) bool {
	return err != io.EOF // want errcmp:"use errors.Is"
}

// isClean matches through wrapping — clean.
func isClean(err error) bool { return errors.Is(err, ErrTorn) }

// nilCheck is not a sentinel comparison — clean.
func nilCheck(err error) bool { return err != nil }

// switchSentinel dispatches on error identity.
func switchSentinel(err error) int {
	switch err {
	case nil:
		return 0
	case ErrTorn: // want errcmp:"switch over an error value"
		return 1
	}
	return 2
}

// assertConcrete unwraps by concrete type assertion.
func assertConcrete(err error) int64 {
	if de, ok := err.(*DecodeError); ok { // want errcmp:"use errors.As"
		return de.Off
	}
	return -1
}

// asClean matches through wrapping — clean.
func asClean(err error) int64 {
	var de *DecodeError
	if errors.As(err, &de) {
		return de.Off
	}
	return -1
}

// typeSwitchConcrete matches a concrete error type by identity; the nil
// case is the legitimate nil check and stays silent.
func typeSwitchConcrete(err error) int64 {
	switch e := err.(type) {
	case nil:
		return 0
	case *DecodeError: // want errcmp:"use errors.As"
		return e.Off
	}
	return -1
}

// suppressed keeps an identity comparison behind a reviewed waiver: this
// function constructs the error itself, so no wrapping can intervene.
func suppressed(err error) bool {
	//lint:ignore errcmp fixture: proving the suppression path
	return err == ErrTorn
}
