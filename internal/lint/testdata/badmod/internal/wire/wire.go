// Package wire seeds detorder violations for the neurdb-lint fixture
// module: encoders must not let map iteration order reach the wire.
package wire

import "sort"

func appendString(dst []byte, s string) []byte {
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

// encodeUnsorted lets randomized map order decide the encoded byte stream.
func encodeUnsorted(dst []byte, opts map[string]string) []byte {
	for k, v := range opts { // want detorder:"accumulates into dst in iteration order"
		dst = appendString(dst, k)
		dst = appendString(dst, v)
	}
	return dst
}

// encodeSorted is the fix idiom: the key-collection loop feeds a sort, so it
// is exempt, and the encoding loop ranges a slice — clean.
func encodeSorted(dst []byte, opts map[string]string) []byte {
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, opts[k])
	}
	return dst
}

// countValues reduces commutatively; order cannot be observed — clean.
func countValues(opts map[string]string) int {
	n := 0
	for _, v := range opts {
		n += len(v)
	}
	return n
}

// buildIndex writes through map keys; keyed writes are order-insensitive —
// clean.
func buildIndex(opts map[string]string) map[string]int {
	idx := make(map[string]int, len(opts))
	for k, v := range opts {
		idx[k] = len(v)
	}
	return idx
}

// concatIgnored is order-sensitive but carries a reviewed suppression.
func concatIgnored(opts map[string]string) string {
	s := ""
	//lint:ignore detorder fixture: proving the suppression path
	for k := range opts {
		s += k
	}
	return s
}

// concatUnsorted builds a string in random order.
func concatUnsorted(opts map[string]string) string {
	s := ""
	for k := range opts { // want detorder:"accumulates into s in iteration order"
		s += k
	}
	return s
}
