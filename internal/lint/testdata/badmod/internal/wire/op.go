// Exhaustive fixtures: a closed opcode enum whose dispatch switches must
// cover every member or carry a default.
package wire

// Op is the fixture wire opcode set.
//
//lint:closedenum
type Op uint8

// Opcodes.
const (
	OpInsert Op = iota
	OpSelect
	OpDelete
)

// opName misses OpDelete with no default: a new opcode added to the enum
// would silently fall through.
func opName(op Op) string {
	switch op { // want exhaustive:"misses OpDelete"
	case OpInsert:
		return "insert"
	case OpSelect:
		return "select"
	}
	return "?"
}

// opCost carries a default, so the set is open by design — clean.
func opCost(op Op) int {
	switch op {
	case OpInsert:
		return 3
	default:
		return 1
	}
}

// opWire covers every member — clean.
func opWire(op Op) byte {
	switch op {
	case OpInsert:
		return 'I'
	case OpSelect:
		return 'S'
	case OpDelete:
		return 'D'
	}
	return 0
}
