// Package server seeds the cross-package half of the lifecycle fixtures:
// a helper in neurdb/client closes its parameter, and the summaries fact
// carries that effect across the package boundary.
package server

import "neurdb/client"

// crossClose uses the rows after client.Drain finalized them; the close
// happens two packages away and is only visible through the imported
// function summary.
func crossClose(r *client.Rows) bool {
	client.Drain(r)
	return r.Next() // want lifecycle:"after r.Close"
}

// crossCleanup drains and stops — clean.
func crossCleanup(r *client.Rows) error {
	client.Drain(r)
	return r.Err()
}

// serveOnce owns the whole lifecycle locally — clean.
func serveOnce(r *client.Rows) int {
	var v int
	for r.Next() {
		r.Scan(&v)
	}
	r.Close()
	return v
}
