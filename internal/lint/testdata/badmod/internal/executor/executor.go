// Package executor seeds batchalias violations for the neurdb-lint fixture
// module: scratch batches and page-head slices must not escape the
// iteration that produced them.
package executor

import (
	"neurdb/internal/rel"
	"neurdb/internal/storage"
)

type op struct {
	saved []rel.Row
	batch *rel.Batch
	heads []*storage.Version
	page  uint32
	ok    bool
}

var globalRows []rel.Row

func consume(b *rel.Batch) {}

// captureRows retains the recycled Rows slice in a struct field.
func (o *op) captureRows(b *rel.Batch) {
	o.saved = b.Rows // want batchalias:"retains a rel.Batch Rows slice"
}

// captureResliced aliases the same backing array through a re-slice.
func (o *op) captureResliced(b *rel.Batch, n int) {
	o.saved = b.Rows[:n] // want batchalias:"retains a rel.Batch Rows slice"
}

// captureBatch retains the batch pointer itself.
func (o *op) captureBatch(b *rel.Batch) {
	o.batch = b // want batchalias:"retains a \*rel.Batch produced elsewhere"
}

// leakGlobal escapes into a package variable.
func leakGlobal(b *rel.Batch) {
	globalRows = b.Rows // want batchalias:"retains a rel.Batch Rows slice"
}

// captureHeads retains the cursor's recycled page-head slice.
func (o *op) captureHeads(cur *storage.BatchCursor) {
	o.page, o.heads, o.ok = cur.NextPage() // want batchalias:"retains the page-head slice returned by NextPage"
}

// spawnCapture reads the batch from a goroutine while the caller refills it.
func spawnCapture(b *rel.Batch) {
	go func() {
		consume(b) // want batchalias:"goroutine captures \*rel.Batch b"
	}()
}

// captureClone copies before retaining — clean.
func (o *op) captureClone(b *rel.Batch) {
	o.saved = append([]rel.Row(nil), b.Rows...)
}

// captureHeadsClone copies the heads it needs — clean.
func (o *op) captureHeadsClone(cur *storage.BatchCursor) {
	_, heads, ok := cur.NextPage()
	if ok {
		o.heads = append([]*storage.Version(nil), heads...)
	}
	o.ok = ok
}

// localUse keeps everything inside the iteration — clean.
func localUse(b *rel.Batch) int {
	rows := b.Rows
	return len(rows)
}
