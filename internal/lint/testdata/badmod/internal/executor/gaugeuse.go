// Cross-package atomicmix fixture: storage.Gauge.N is atomic in its
// defining package; the plain write here is only catchable through the
// imported field fact.
package executor

import "neurdb/internal/storage"

// resetGauge writes the gauge without the atomic.
func resetGauge(g *storage.Gauge) {
	g.N = 0 // want atomicmix:"accessed atomically elsewhere but plainly here"
}

// readGauge goes through the accessor — clean.
func readGauge(g *storage.Gauge) uint64 {
	return g.Load()
}
