// Gateorder fixtures: the lock order between write-claim stripes and the
// WAL commit gate is stripe first, gate second; acquiring a stripe under
// the gate — directly or through a callee — inverts against the
// checkpointer.
package executor

import "sync"

type gateLog struct{ mu sync.RWMutex }

func (g *gateLog) GateRLock() { g.mu.RLock() }

func (g *gateLog) GateRUnlock() { g.mu.RUnlock() }

func (g *gateLog) GateLock() { g.mu.Lock() }

func (g *gateLog) GateUnlock() { g.mu.Unlock() }

type claims struct {
	stripes [8]struct{ mu sync.Mutex }
	log     *gateLog
}

func (c *claims) lockStripe(i int) { c.stripes[i].mu.Lock() }

func (c *claims) unlockStripe(i int) { c.stripes[i].mu.Unlock() }

// claimAny is the helper whose interprocedural summary carries the
// may-acquire effect.
func (c *claims) claimAny(i int) { c.lockStripe(i) }

// orderClean takes the stripe first, then the gate — the blessed order.
func (c *claims) orderClean(i int) {
	c.lockStripe(i)
	c.log.GateRLock()
	c.log.GateRUnlock()
	c.unlockStripe(i)
}

// inverted acquires a stripe while the read gate is held.
func (c *claims) inverted(i int) {
	c.log.GateRLock()
	c.lockStripe(i) // want gateorder:"while the WAL commit gate is held"
	c.unlockStripe(i)
	c.log.GateRUnlock()
}

// invertedViaCall inverts through the callee's summary: nothing on this
// line names a stripe.
func (c *claims) invertedViaCall(i int) {
	c.log.GateLock()
	c.claimAny(i) // want gateorder:"may acquire a write-claim stripe"
	c.log.GateUnlock()
}

// releasedFirst drops the gate before claiming — clean.
func (c *claims) releasedFirst(i int) {
	c.log.GateRLock()
	c.log.GateRUnlock()
	c.lockStripe(i)
	c.unlockStripe(i)
}

// branchHeld holds the gate on only one path into the claim; a may-held
// gate is still an inversion.
func (c *claims) branchHeld(i int, fast bool) {
	if !fast {
		c.log.GateRLock()
	}
	c.lockStripe(i) // want gateorder:"while the WAL commit gate is held"
	c.unlockStripe(i)
	if !fast {
		c.log.GateRUnlock()
	}
}
