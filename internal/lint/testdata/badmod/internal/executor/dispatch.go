// Cross-package exhaustive fixture: the closed set of wire.Op lives in its
// defining package; the gap in this dispatch is only catchable through the
// imported enum fact.
package executor

import "neurdb/internal/wire"

// writesData misses OpSelect and OpDelete.
func writesData(op wire.Op) bool {
	switch op { // want exhaustive:"misses OpDelete, OpSelect"
	case wire.OpInsert:
		return true
	}
	return false
}

// opClass defaults the long tail — clean.
func opClass(op wire.Op) string {
	switch op {
	case wire.OpSelect:
		return "read"
	default:
		return "write"
	}
}
