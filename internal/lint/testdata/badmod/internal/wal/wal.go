// Package wal seeds ioerr and commitgate (rename-before-fsync) violations
// for the neurdb-lint fixture module.
package wal

import "os"

// closeDiscard drops a Close error on the durability path.
func closeDiscard(f *os.File) {
	f.Close() // want ioerr:"Close error discarded"
}

// deferDiscard drops it via defer — same hole, later timing.
func deferDiscard(f *os.File) {
	defer f.Close() // want ioerr:"Close error discarded"
}

// removeDiscard drops a Remove error.
func removeDiscard(tmp string) {
	os.Remove(tmp) // want ioerr:"Remove error discarded"
}

// explicitDrop declares the drop; the blank assignment is the reviewable
// marker the analyzer asks for — clean.
func explicitDrop(f *os.File) {
	_ = f.Close()
}

// handled consumes the error — clean.
func handled(f *os.File) error {
	return f.Sync()
}

// publishTorn renames a file into its final name with no fsync first.
func publishTorn(tmp, final string) error {
	return os.Rename(tmp, final) // want commitgate:"rename-before-fsync is a torn-file hole"
}

// publishSafe syncs before the rename — clean.
func publishSafe(f *os.File, tmp, final string) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}
