package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp enforces wrap-safe error handling: the engine's typed sentinels
// (ErrReadOnly, ErrStatementTimeout, txn.ErrWriteConflict, io.EOF at the
// wire edge) travel through fmt.Errorf("%w") wrapping, client round-trips,
// and retry loops. A direct ==/!= against a sentinel, a switch over the
// error value, or a concrete type assertion all break the moment any layer
// in between wraps the error — errors.Is and errors.As are the only
// comparisons that survive wrapping. Tests are included: an identity
// comparison in a test encodes the same fragile assumption and rots the
// suite when wrapping is added.
var ErrCmp = &Analyzer{
	Name:         "errcmp",
	Doc:          "flag ==/!=/switch/type-assert on error values where errors.Is/errors.As is required",
	Packages:     []string{"neurdb", "neurdb/..."},
	IncludeTests: true,
	Run:          runErrCmp,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// sentinelErrVar resolves an expression to a package-level error variable
// (an error sentinel), nil otherwise.
func sentinelErrVar(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func runErrCmp(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
					sent := sentinelErrVar(info, pair[0])
					if sent == nil || !isErrorType(info.TypeOf(pair[1])) {
						continue
					}
					pass.Reportf(n.Pos(), "error compared with %s against sentinel %s; use errors.Is so wrapped errors still match", n.Op, sent.Name())
					break
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(info.TypeOf(n.Tag)) {
					return true
				}
				for _, c := range n.Body.List {
					cc := c.(*ast.CaseClause)
					for _, e := range cc.List {
						if sent := sentinelErrVar(info, e); sent != nil {
							pass.Reportf(e.Pos(), "switch over an error value matches sentinel %s by identity; use if/else with errors.Is", sent.Name())
						}
					}
				}
			case *ast.TypeAssertExpr:
				// n.Type == nil is the `.(type)` of a type switch, handled
				// below with clause-level precision.
				if n.Type == nil || !isErrorType(info.TypeOf(n.X)) {
					return true
				}
				if t := info.TypeOf(n.Type); t != nil {
					if _, isIface := t.Underlying().(*types.Interface); !isIface {
						pass.Reportf(n.Pos(), "concrete type assertion on an error; use errors.As so wrapped errors still match")
					}
				}
			case *ast.TypeSwitchStmt:
				x := typeSwitchSubject(n)
				if x == nil || !isErrorType(info.TypeOf(x)) {
					return true
				}
				for _, c := range n.Body.List {
					cc := c.(*ast.CaseClause)
					for _, e := range cc.List {
						t := info.TypeOf(e)
						if t == nil {
							continue
						}
						if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
							continue // `case nil:` is the legitimate nil check
						}
						if _, isIface := t.Underlying().(*types.Interface); !isIface {
							pass.Reportf(e.Pos(), "type switch case matches a concrete error type by identity; use errors.As so wrapped errors still match")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// typeSwitchSubject extracts the asserted expression of a type switch:
// `switch x.(type)` or `switch v := x.(type)`.
func typeSwitchSubject(s *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch a := s.Assign.(type) {
	case *ast.ExprStmt:
		e = a.X
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			e = a.Rhs[0]
		}
	}
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return nil
}
