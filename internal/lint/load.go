package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader typechecks packages of a single Go module from source, resolving
// module-internal imports by directory and standard-library imports through
// the compiler's source importer. It exists so neurdb-lint can run standalone
// (`neurdb-lint ./...`) and so analyzer tests can load fixture modules —
// without golang.org/x/tools/go/packages, which this module deliberately does
// not depend on.
type Loader struct {
	// Root is the module root directory (the one containing go.mod).
	Root string
	// Module is the module path from go.mod (e.g. "neurdb").
	Module string

	fset   *token.FileSet
	stdlib types.Importer
	cache  map[string]*Package
	// loading guards against import cycles.
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at dir, reading the
// module path from its go.mod.
func NewLoader(dir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: loader: %w", err)
	}
	mod := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			mod = strings.TrimSpace(rest)
			break
		}
	}
	if mod == "" {
		return nil, fmt.Errorf("lint: loader: no module directive in %s/go.mod", dir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    dir,
		Module:  mod,
		fset:    fset,
		stdlib:  importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	rel := strings.TrimPrefix(path, l.Module+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// goFiles lists the non-test .go files of dir that match the current build
// context (so files behind build tags like `invariants` are filtered the
// same way `go build` filters them).
func (l *Loader) goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			files = append(files, filepath.Join(dir, name))
		}
	}
	sort.Strings(files)
	return files, nil
}

// Import implements types.Importer: stdlib paths go to the source importer,
// module-internal paths are loaded recursively.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.stdlib.Import(path)
}

// Load parses and typechecks the package at the given module-internal import
// path, memoized.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.goFiles(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", path, dir)
	}
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	p := &Package{Fset: l.fset, Files: asts, Pkg: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// Walk returns the import paths of every package under the module root, in
// lexical order, skipping testdata, hidden directories, and directories with
// no buildable Go files.
func (l *Loader) Walk() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := l.goFiles(path)
		if err != nil || len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.Root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.Module)
		} else {
			paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
