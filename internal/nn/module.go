package nn

import (
	"math"
	"math/rand"
)

// Param is a trainable parameter tensor with its gradient accumulator.
// Frozen parameters are skipped by optimizers — the mechanism behind the
// paper's incremental model update (freeze the prefix, fine-tune the tail).
type Param struct {
	Name   string
	W      *Matrix
	Grad   *Matrix
	Frozen bool
}

// NewParam allocates a parameter with a zeroed gradient.
func NewParam(name string, w *Matrix) *Param {
	return &Param{Name: name, W: w, Grad: NewMatrix(w.Rows, w.Cols)}
}

// Module is a differentiable layer. Forward caches whatever Backward needs;
// Backward consumes the gradient w.r.t. the output and returns the gradient
// w.r.t. the input, accumulating parameter gradients along the way.
type Module interface {
	Forward(x *Matrix) *Matrix
	Backward(dy *Matrix) *Matrix
	Params() []*Param
}

// TrainAware is implemented by modules whose behaviour differs between
// training and inference (e.g. Dropout).
type TrainAware interface {
	SetTraining(bool)
}

// Linear is a fully connected layer: y = xW + b.
type Linear struct {
	WP, BP *Param
	lastX  *Matrix
}

// NewLinear creates a Linear layer with Xavier-style initialization.
func NewLinear(in, out int, r *rand.Rand) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		WP: NewParam("W", Randn(in, out, std, r)),
		BP: NewParam("b", NewMatrix(1, out)),
	}
}

// Forward implements Module.
func (l *Linear) Forward(x *Matrix) *Matrix {
	l.lastX = x
	return AddRowVec(MatMul(x, l.WP.W), l.BP.W.Data)
}

// Backward implements Module.
func (l *Linear) Backward(dy *Matrix) *Matrix {
	AddInPlace(l.WP.Grad, MatMulAT(l.lastX, dy))
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j, v := range row {
			l.BP.Grad.Data[j] += v
		}
	}
	return MatMulBT(dy, l.WP.W)
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.WP, l.BP} }

// ReLU is the rectified linear activation.
type ReLU struct{ lastX *Matrix }

// Forward implements Module.
func (l *ReLU) Forward(x *Matrix) *Matrix {
	l.lastX = x
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// Backward implements Module.
func (l *ReLU) Backward(dy *Matrix) *Matrix {
	out := NewMatrix(dy.Rows, dy.Cols)
	for i, v := range l.lastX.Data {
		if v > 0 {
			out.Data[i] = dy.Data[i]
		}
	}
	return out
}

// Params implements Module.
func (l *ReLU) Params() []*Param { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct{ lastY *Matrix }

// Forward implements Module.
func (l *Sigmoid) Forward(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	l.lastY = out
	return out
}

// Backward implements Module.
func (l *Sigmoid) Backward(dy *Matrix) *Matrix {
	out := NewMatrix(dy.Rows, dy.Cols)
	for i, y := range l.lastY.Data {
		out.Data[i] = dy.Data[i] * y * (1 - y)
	}
	return out
}

// Params implements Module.
func (l *Sigmoid) Params() []*Param { return nil }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct{ lastY *Matrix }

// Forward implements Module.
func (l *Tanh) Forward(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	l.lastY = out
	return out
}

// Backward implements Module.
func (l *Tanh) Backward(dy *Matrix) *Matrix {
	out := NewMatrix(dy.Rows, dy.Cols)
	for i, y := range l.lastY.Data {
		out.Data[i] = dy.Data[i] * (1 - y*y)
	}
	return out
}

// Params implements Module.
func (l *Tanh) Params() []*Param { return nil }

// LayerNorm normalizes each row to zero mean / unit variance and applies a
// learned affine transform.
type LayerNorm struct {
	Gamma, Beta *Param
	eps         float64
	lastXHat    *Matrix
	lastInvStd  []float64
}

// NewLayerNorm creates a LayerNorm over rows of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	g := NewMatrix(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{
		Gamma: NewParam("gamma", g),
		Beta:  NewParam("beta", NewMatrix(1, dim)),
		eps:   1e-5,
	}
}

// Forward implements Module.
func (l *LayerNorm) Forward(x *Matrix) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	l.lastXHat = NewMatrix(x.Rows, x.Cols)
	l.lastInvStd = make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varsum float64
		for _, v := range row {
			d := v - mean
			varsum += d * d
		}
		invStd := 1 / math.Sqrt(varsum/float64(len(row))+l.eps)
		l.lastInvStd[i] = invStd
		xhat := l.lastXHat.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			xhat[j] = (v - mean) * invStd
			orow[j] = xhat[j]*l.Gamma.W.Data[j] + l.Beta.W.Data[j]
		}
	}
	return out
}

// Backward implements Module.
func (l *LayerNorm) Backward(dy *Matrix) *Matrix {
	out := NewMatrix(dy.Rows, dy.Cols)
	n := float64(dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		dyr := dy.Row(i)
		xhat := l.lastXHat.Row(i)
		invStd := l.lastInvStd[i]
		var sumDxhat, sumDxhatXhat float64
		dxhat := make([]float64, dy.Cols)
		for j, g := range dyr {
			l.Gamma.Grad.Data[j] += g * xhat[j]
			l.Beta.Grad.Data[j] += g
			dxhat[j] = g * l.Gamma.W.Data[j]
			sumDxhat += dxhat[j]
			sumDxhatXhat += dxhat[j] * xhat[j]
		}
		orow := out.Row(i)
		for j := range dyr {
			orow[j] = invStd / n * (n*dxhat[j] - sumDxhat - xhat[j]*sumDxhatXhat)
		}
	}
	return out
}

// Params implements Module.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// Dropout zeroes activations with probability p during training and scales
// the survivors by 1/(1-p).
type Dropout struct {
	P        float64
	rng      *rand.Rand
	training bool
	lastMask *Matrix
}

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, r *rand.Rand) *Dropout {
	return &Dropout{P: p, rng: r, training: true}
}

// SetTraining implements TrainAware.
func (l *Dropout) SetTraining(b bool) { l.training = b }

// Forward implements Module.
func (l *Dropout) Forward(x *Matrix) *Matrix {
	if !l.training || l.P <= 0 {
		l.lastMask = nil
		return x
	}
	out := NewMatrix(x.Rows, x.Cols)
	l.lastMask = NewMatrix(x.Rows, x.Cols)
	keep := 1 - l.P
	for i, v := range x.Data {
		if l.rng.Float64() < keep {
			l.lastMask.Data[i] = 1 / keep
			out.Data[i] = v / keep
		}
	}
	return out
}

// Backward implements Module.
func (l *Dropout) Backward(dy *Matrix) *Matrix {
	if l.lastMask == nil {
		return dy
	}
	return Hadamard(dy, l.lastMask)
}

// Params implements Module.
func (l *Dropout) Params() []*Param { return nil }

// Embedding maps integer ids (provided as float64 entries of the input) to
// dense vectors. An input of shape n×k (k categorical fields) produces an
// output of shape n×(k·Dim), the concatenation of the field embeddings.
type Embedding struct {
	Table *Param
	Dim   int
	lastX *Matrix
}

// NewEmbedding creates an embedding table with vocab rows of width dim.
func NewEmbedding(vocab, dim int, r *rand.Rand) *Embedding {
	return &Embedding{Table: NewParam("emb", Randn(vocab, dim, 0.1, r)), Dim: dim}
}

// Forward implements Module.
func (e *Embedding) Forward(x *Matrix) *Matrix {
	e.lastX = x
	out := NewMatrix(x.Rows, x.Cols*e.Dim)
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			id := e.clampID(x.At(i, j))
			copy(out.Row(i)[j*e.Dim:(j+1)*e.Dim], e.Table.W.Row(id))
		}
	}
	return out
}

// Backward implements Module. Embeddings sit at the bottom of the network,
// so the returned input gradient is nil-like (zero matrix).
func (e *Embedding) Backward(dy *Matrix) *Matrix {
	for i := 0; i < e.lastX.Rows; i++ {
		for j := 0; j < e.lastX.Cols; j++ {
			id := e.clampID(e.lastX.At(i, j))
			grow := e.Table.Grad.Row(id)
			drow := dy.Row(i)[j*e.Dim : (j+1)*e.Dim]
			for d, v := range drow {
				grow[d] += v
			}
		}
	}
	return NewMatrix(e.lastX.Rows, e.lastX.Cols)
}

func (e *Embedding) clampID(v float64) int {
	id := int(v)
	if id < 0 {
		id = 0
	}
	if id >= e.Table.W.Rows {
		id = e.Table.W.Rows - 1
	}
	return id
}

// Params implements Module.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Sequential chains modules; the fundamental composite used for MLP heads.
type Sequential struct {
	Layers []Module
}

// NewSequential chains the given modules.
func NewSequential(layers ...Module) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Module.
func (s *Sequential) Forward(x *Matrix) *Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(dy *Matrix) *Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// SetTraining propagates the training flag to train-aware layers.
func (s *Sequential) SetTraining(b bool) {
	for _, l := range s.Layers {
		if ta, ok := l.(TrainAware); ok {
			ta.SetTraining(b)
		}
	}
}

// FreezeUpTo freezes the parameters of layers [0, n) — the incremental
// update primitive: the first n layers keep their weights while the tail is
// fine-tuned.
func (s *Sequential) FreezeUpTo(n int) {
	for i, l := range s.Layers {
		frozen := i < n
		for _, p := range l.Params() {
			p.Frozen = frozen
		}
	}
}
