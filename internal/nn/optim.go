package nn

import "math"

// Optimizer updates parameters from accumulated gradients. Frozen parameters
// are always skipped, which implements the incremental-update contract.
type Optimizer interface {
	Step(params []*Param)
	ZeroGrad(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum and weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param]*Matrix
}

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*Matrix)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		v := o.velocity[p]
		if o.Momentum != 0 && v == nil {
			v = NewMatrix(p.W.Rows, p.W.Cols)
			o.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			if o.WeightDecay != 0 {
				g += o.WeightDecay * p.W.Data[i]
			}
			if o.Momentum != 0 {
				v.Data[i] = o.Momentum*v.Data[i] + g
				g = v.Data[i]
			}
			p.W.Data[i] -= o.LR * g
		}
	}
}

// ZeroGrad implements Optimizer.
func (o *SGD) ZeroGrad(params []*Param) { zeroGrads(params) }

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64
	t                     int
	m, v                  map[*Param]*Matrix
}

// NewAdam creates an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*Matrix), v: make(map[*Param]*Matrix),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		if p.Frozen {
			continue
		}
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = NewMatrix(p.W.Rows, p.W.Cols)
			v = NewMatrix(p.W.Rows, p.W.Cols)
			o.m[p], o.v[p] = m, v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			if o.WeightDecay != 0 {
				g += o.WeightDecay * p.W.Data[i]
			}
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.W.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
}

// ZeroGrad implements Optimizer.
func (o *Adam) ZeroGrad(params []*Param) { zeroGrads(params) }

func zeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// ClipGradNorm rescales gradients so their global L2 norm is at most max.
// Returns the pre-clip norm.
func ClipGradNorm(params []*Param, max float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > max && norm > 0 {
		s := max / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= s
			}
		}
	}
	return norm
}
