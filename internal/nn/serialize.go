package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// LayerWeights is the serializable snapshot of a single layer's parameters.
// It is the unit of storage in the layered model store (paper Fig. 3): the
// model manager persists one LayerWeights blob per (MID, LID, timestamp).
type LayerWeights struct {
	Name   string
	Shapes [][2]int
	Datas  [][]float64
}

// SnapshotParams captures the current weights of a parameter list.
func SnapshotParams(name string, params []*Param) LayerWeights {
	lw := LayerWeights{Name: name}
	for _, p := range params {
		lw.Shapes = append(lw.Shapes, [2]int{p.W.Rows, p.W.Cols})
		data := make([]float64, len(p.W.Data))
		copy(data, p.W.Data)
		lw.Datas = append(lw.Datas, data)
	}
	return lw
}

// RestoreParams writes a snapshot back into a parameter list; shapes must
// match exactly.
func RestoreParams(lw LayerWeights, params []*Param) error {
	if len(lw.Shapes) != len(params) {
		return fmt.Errorf("nn: restore %q: have %d tensors, want %d", lw.Name, len(lw.Shapes), len(params))
	}
	for i, p := range params {
		if lw.Shapes[i][0] != p.W.Rows || lw.Shapes[i][1] != p.W.Cols {
			return fmt.Errorf("nn: restore %q tensor %d: shape %v, want %dx%d",
				lw.Name, i, lw.Shapes[i], p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, lw.Datas[i])
	}
	return nil
}

// EncodeWeights serializes a layer snapshot to bytes (gob).
func EncodeWeights(lw LayerWeights) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(lw); err != nil {
		return nil, fmt.Errorf("nn: encode weights: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeWeights deserializes a layer snapshot.
func DecodeWeights(data []byte) (LayerWeights, error) {
	var lw LayerWeights
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&lw); err != nil {
		return LayerWeights{}, fmt.Errorf("nn: decode weights: %w", err)
	}
	return lw, nil
}

// SizeBytes reports the approximate in-memory footprint of the snapshot,
// used to measure the storage saving of incremental updates.
func (lw LayerWeights) SizeBytes() int {
	n := len(lw.Name)
	for _, d := range lw.Datas {
		n += 8 * len(d)
	}
	n += 16 * len(lw.Shapes)
	return n
}

// SnapshotSequential snapshots every layer of a Sequential, one LayerWeights
// per layer (including parameter-free layers, which snapshot empty — keeping
// layer indexes aligned with the model store's LID space).
func SnapshotSequential(s *Sequential) []LayerWeights {
	out := make([]LayerWeights, len(s.Layers))
	for i, l := range s.Layers {
		out[i] = SnapshotParams(fmt.Sprintf("layer%d", i), l.Params())
	}
	return out
}

// RestoreSequential restores per-layer snapshots into a Sequential with the
// same architecture.
func RestoreSequential(s *Sequential, layers []LayerWeights) error {
	if len(layers) != len(s.Layers) {
		return fmt.Errorf("nn: restore sequential: have %d layers, want %d", len(layers), len(s.Layers))
	}
	for i, l := range s.Layers {
		if err := RestoreParams(layers[i], l.Params()); err != nil {
			return err
		}
	}
	return nil
}
