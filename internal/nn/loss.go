package nn

import (
	"math"
	"sort"
)

// MSELoss returns the mean-squared-error loss over all elements and the
// gradient w.r.t. pred. Used by PREDICT VALUE OF (regression) tasks.
func MSELoss(pred, target *Matrix) (float64, *Matrix) {
	checkSameShape("MSELoss", pred, target)
	grad := NewMatrix(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	if n == 0 {
		return 0, grad
	}
	var loss float64
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// BCEWithLogitsLoss returns the mean binary-cross-entropy loss computed from
// raw logits (numerically stable) and its gradient w.r.t. the logits. Used
// by PREDICT CLASS OF (binary classification) tasks.
func BCEWithLogitsLoss(logits, target *Matrix) (float64, *Matrix) {
	checkSameShape("BCEWithLogitsLoss", logits, target)
	grad := NewMatrix(logits.Rows, logits.Cols)
	n := float64(len(logits.Data))
	if n == 0 {
		return 0, grad
	}
	var loss float64
	for i := range logits.Data {
		z, y := logits.Data[i], target.Data[i]
		// loss = max(z,0) - z*y + log(1+exp(-|z|))
		loss += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		p := 1 / (1 + math.Exp(-z))
		grad.Data[i] = (p - y) / n
	}
	return loss / n, grad
}

// SoftmaxCELoss computes softmax cross-entropy per row given integer class
// labels; returns the mean loss and gradient w.r.t. the logits. Used to
// train plan-selection (pick the best candidate plan) and the CC decision
// model's supervised pre-training.
func SoftmaxCELoss(logits *Matrix, labels []int) (float64, *Matrix) {
	if len(labels) != logits.Rows {
		panic("nn: SoftmaxCELoss label count mismatch")
	}
	probs := SoftmaxRows(logits)
	grad := NewMatrix(logits.Rows, logits.Cols)
	n := float64(logits.Rows)
	if n == 0 {
		return 0, grad
	}
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		p := probs.Row(i)
		y := labels[i]
		loss += -math.Log(math.Max(p[y], 1e-12))
		grow := grad.Row(i)
		for j, pj := range p {
			grow[j] = pj / n
		}
		grow[y] -= 1 / n
	}
	return loss / n, grad
}

// PairwiseRankLoss is a logistic ranking loss over score pairs: it pushes
// score(better) above score(worse). Returns the loss and gradients w.r.t.
// the two scores. Used by the Lero-style pairwise plan comparator.
func PairwiseRankLoss(better, worse float64) (loss, gBetter, gWorse float64) {
	d := better - worse
	loss = math.Log1p(math.Exp(-d))
	s := 1 / (1 + math.Exp(d)) // sigmoid(-d)
	return loss, -s, s
}

// Accuracy computes the fraction of rows whose sigmoid(logit) rounds to the
// binary target.
func Accuracy(logits, target *Matrix) float64 {
	if logits.Rows == 0 {
		return 0
	}
	var correct int
	for i := range logits.Data {
		p := 1 / (1 + math.Exp(-logits.Data[i]))
		pred := 0.0
		if p >= 0.5 {
			pred = 1
		}
		if pred == target.Data[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(logits.Data))
}

// AUC computes the area under the ROC curve for binary targets given scores.
// It is the paper's accuracy metric for CTR-style tasks.
func AUC(scores []float64, labels []float64) float64 {
	type pair struct {
		s float64
		y float64
	}
	pairs := make([]pair, len(scores))
	var pos, neg float64
	for i := range scores {
		pairs[i] = pair{scores[i], labels[i]}
		if labels[i] >= 0.5 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	// Rank-sum (Mann-Whitney) formulation with midranks for ties.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s < pairs[j].s })
	ranks := make([]float64, len(pairs))
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			j++
		}
		mid := float64(i+j+1) / 2 // average 1-based rank
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		i = j
	}
	var sumPos float64
	for i, p := range pairs {
		if p.y >= 0.5 {
			sumPos += ranks[i]
		}
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg)
}
