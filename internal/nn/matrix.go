// Package nn is a from-scratch, stdlib-only neural-network runtime used by
// every learned component in the system: the in-database analytics models
// (ARM-Net-lite), the learned concurrency-control decision model, and the
// learned query optimizer's encoder/analyzer. It provides dense matrices,
// differentiable modules with hand-written backward passes, losses,
// optimizers with layer freezing (the substrate for the paper's incremental
// model update), and weight serialization for the layered model store.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix. Rows are samples (or sequence
// positions), columns are features.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("nn: FromSlice %dx%d needs %d values, got %d", rows, cols, rows*cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("nn: FromRows ragged input")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Randn fills a new matrix with N(0, std²) entries from r.
func Randn(rows, cols int, std float64, r *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64() * std
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a×b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulBT returns a×bᵀ.
func MatMulBT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulBT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// MatMulAT returns aᵀ×b.
func MatMulAT(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: MatMulAT shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	checkSameShape("Add", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns a⊙b elementwise.
func Hadamard(a, b *Matrix) *Matrix {
	checkSameShape("Hadamard", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns s·a.
func Scale(a *Matrix, s float64) *Matrix {
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddRowVec adds vector v (length Cols) to every row of a, returning a new
// matrix; the bias-add of a Linear layer.
func AddRowVec(a *Matrix, v []float64) *Matrix {
	if len(v) != a.Cols {
		panic("nn: AddRowVec length mismatch")
	}
	out := NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		orow := out.Row(i)
		for j := range row {
			orow[j] = row[j] + v[j]
		}
	}
	return out
}

// SoftmaxRows applies softmax independently to every row.
func SoftmaxRows(a *Matrix) *Matrix {
	out := NewMatrix(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		orow := out.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		if sum == 0 {
			sum = 1
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// SoftmaxBackwardRows computes the gradient of softmax applied row-wise:
// dx = y ⊙ (dy - rowsum(dy ⊙ y)).
func SoftmaxBackwardRows(y, dy *Matrix) *Matrix {
	checkSameShape("SoftmaxBackwardRows", y, dy)
	out := NewMatrix(y.Rows, y.Cols)
	for i := 0; i < y.Rows; i++ {
		yr, dyr, or := y.Row(i), dy.Row(i), out.Row(i)
		var dot float64
		for j := range yr {
			dot += yr[j] * dyr[j]
		}
		for j := range yr {
			or[j] = yr[j] * (dyr[j] - dot)
		}
	}
	return out
}

// MeanRows returns the column-wise mean as a 1×Cols matrix.
func MeanRows(a *Matrix) *Matrix {
	out := NewMatrix(1, a.Cols)
	if a.Rows == 0 {
		return out
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	inv := 1.0 / float64(a.Rows)
	for j := range out.Data {
		out.Data[j] *= inv
	}
	return out
}

// Concat stacks b to the right of a (same Rows).
func Concat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("nn: Concat row mismatch")
	}
	out := NewMatrix(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// VStack stacks b below a (same Cols).
func VStack(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("nn: VStack col mismatch")
	}
	out := NewMatrix(a.Rows+b.Rows, a.Cols)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
