package nn

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic target: minimize 0.5*||w - w*||² — gradients are (w - w*).
func quadGrad(p *Param, target []float64) {
	for i := range p.W.Data {
		p.Grad.Data[i] = p.W.Data[i] - target[i]
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := NewParam("w", FromSlice(1, 3, []float64{5, -4, 2}))
	target := []float64{1, 2, 3}
	opt := NewSGD(0.2, 0.0)
	for i := 0; i < 200; i++ {
		opt.ZeroGrad([]*Param{p})
		quadGrad(p, target)
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.W.Data[i]-want) > 1e-6 {
			t.Fatalf("SGD did not converge: got %v", p.W.Data)
		}
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(momentum float64) float64 {
		p := NewParam("w", FromSlice(1, 1, []float64{10}))
		opt := NewSGD(0.01, momentum)
		for i := 0; i < 50; i++ {
			opt.ZeroGrad([]*Param{p})
			quadGrad(p, []float64{0})
			opt.Step([]*Param{p})
		}
		return math.Abs(p.W.Data[0])
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should accelerate convergence on this quadratic")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParam("w", FromSlice(1, 3, []float64{5, -4, 2}))
	target := []float64{1, 2, 3}
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		opt.ZeroGrad([]*Param{p})
		quadGrad(p, target)
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.W.Data[i]-want) > 1e-3 {
			t.Fatalf("Adam did not converge: got %v", p.W.Data)
		}
	}
}

func TestFrozenParamsDoNotMove(t *testing.T) {
	p1 := NewParam("w1", FromSlice(1, 1, []float64{5}))
	p2 := NewParam("w2", FromSlice(1, 1, []float64{5}))
	p2.Frozen = true
	for _, opt := range []Optimizer{NewSGD(0.1, 0.9), NewAdam(0.1)} {
		p1.W.Data[0], p2.W.Data[0] = 5, 5
		for i := 0; i < 10; i++ {
			opt.ZeroGrad([]*Param{p1, p2})
			quadGrad(p1, []float64{0})
			quadGrad(p2, []float64{0})
			opt.Step([]*Param{p1, p2})
		}
		if p1.W.Data[0] == 5 {
			t.Fatal("unfrozen parameter should move")
		}
		if p2.W.Data[0] != 5 {
			t.Fatal("frozen parameter must not move")
		}
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", FromSlice(1, 1, []float64{10}))
	opt := NewSGD(0.1, 0)
	opt.WeightDecay = 0.5
	opt.ZeroGrad([]*Param{p})
	// zero task gradient: only decay applies
	opt.Step([]*Param{p})
	if p.W.Data[0] >= 10 {
		t.Fatal("weight decay should shrink the weight")
	}
	a := NewAdam(0.1)
	a.WeightDecay = 0.5
	q := NewParam("w", FromSlice(1, 1, []float64{10}))
	a.ZeroGrad([]*Param{q})
	a.Step([]*Param{q})
	if q.W.Data[0] >= 10 {
		t.Fatal("adam weight decay should shrink the weight")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", NewMatrix(1, 2))
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-9 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	var after float64
	for _, g := range p.Grad.Data {
		after += g * g
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v, want 1", math.Sqrt(after))
	}
	// Below threshold: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("small gradients must not be rescaled")
	}
}

func TestFreezeUpTo(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	seq := NewSequential(NewLinear(2, 4, r), &ReLU{}, NewLinear(4, 1, r))
	seq.FreezeUpTo(2)
	if !seq.Layers[0].Params()[0].Frozen {
		t.Fatal("prefix layer should be frozen")
	}
	if seq.Layers[2].Params()[0].Frozen {
		t.Fatal("tail layer should be trainable")
	}
	seq.FreezeUpTo(0)
	if seq.Layers[0].Params()[0].Frozen {
		t.Fatal("unfreeze failed")
	}
}

func TestXORTrainingEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	model := NewSequential(
		NewLinear(2, 8, r),
		&Tanh{},
		NewLinear(8, 1, r),
	)
	x := FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := FromRows([][]float64{{0}, {1}, {1}, {0}})
	opt := NewAdam(0.05)
	var loss float64
	for i := 0; i < 800; i++ {
		opt.ZeroGrad(model.Params())
		logits := model.Forward(x)
		var grad *Matrix
		loss, grad = BCEWithLogitsLoss(logits, y)
		model.Backward(grad)
		opt.Step(model.Params())
	}
	if loss > 0.1 {
		t.Fatalf("XOR training did not converge: loss=%v", loss)
	}
	if acc := Accuracy(model.Forward(x), y); acc != 1 {
		t.Fatalf("XOR accuracy = %v, want 1", acc)
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []float64{1, 1, 0, 0}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Inverted.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []float64{1, 1, 0, 0}); math.Abs(got) > 1e-9 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All ties → 0.5.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []float64{1, 0, 1, 0}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Degenerate single-class input.
	if got := AUC([]float64{0.5, 0.6}, []float64{1, 1}); got != 0.5 {
		t.Fatalf("single-class AUC = %v", got)
	}
}

func TestPairwiseRankLoss(t *testing.T) {
	l1, gb, gw := PairwiseRankLoss(2, 0)
	if l1 <= 0 || gb >= 0 || gw <= 0 {
		t.Fatal("rank loss signs wrong")
	}
	l2, _, _ := PairwiseRankLoss(0, 2)
	if l2 <= l1 {
		t.Fatal("mis-ordered pair must have higher loss")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	seq := NewSequential(NewLinear(3, 5, r), &ReLU{}, NewLinear(5, 2, r))
	snap := SnapshotSequential(seq)
	if len(snap) != 3 {
		t.Fatalf("snapshot layer count = %d", len(snap))
	}
	// Round-trip through bytes.
	blob, err := EncodeWeights(snap[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeWeights(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.SizeBytes() != snap[0].SizeBytes() || back.SizeBytes() == 0 {
		t.Fatal("size mismatch after roundtrip")
	}
	// Mutate, restore, compare.
	orig := seq.Layers[0].Params()[0].W.Clone()
	for i := range seq.Layers[0].Params()[0].W.Data {
		seq.Layers[0].Params()[0].W.Data[i] = 99
	}
	if err := RestoreSequential(seq, snap); err != nil {
		t.Fatal(err)
	}
	for i := range orig.Data {
		if seq.Layers[0].Params()[0].W.Data[i] != orig.Data[i] {
			t.Fatal("restore did not recover original weights")
		}
	}
	// Error paths.
	if err := RestoreSequential(seq, snap[:1]); err == nil {
		t.Fatal("layer-count mismatch should error")
	}
	bad := snap[0]
	bad.Shapes = [][2]int{{1, 1}, {1, 1}}
	bad.Datas = [][]float64{{0}, {0}}
	if err := RestoreParams(bad, seq.Layers[0].Params()); err == nil {
		t.Fatal("shape mismatch should error")
	}
	if _, err := DecodeWeights([]byte("garbage")); err == nil {
		t.Fatal("garbage decode should error")
	}
}
