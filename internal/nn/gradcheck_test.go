package nn

import (
	"math"
	"math/rand"
	"testing"
)

// scalarLoss runs forward and returns 0.5*sum(y²) — a simple scalar whose
// gradient w.r.t. y is y itself, making analytic backprop easy to seed.
func scalarLoss(y *Matrix) (float64, *Matrix) {
	var loss float64
	grad := NewMatrix(y.Rows, y.Cols)
	for i, v := range y.Data {
		loss += 0.5 * v * v
		grad.Data[i] = v
	}
	return loss, grad
}

// checkModuleGradients verifies analytic parameter and input gradients of a
// module against central finite differences.
func checkModuleGradients(t *testing.T, name string, m Module, x *Matrix, tol float64) {
	t.Helper()
	// Analytic.
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
	y := m.Forward(x)
	_, dy := scalarLoss(y)
	dx := m.Backward(dy)

	const eps = 1e-5
	// Parameter gradients.
	for pi, p := range m.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp, _ := scalarLoss(m.Forward(x))
			p.W.Data[i] = orig - eps
			lm, _ := scalarLoss(m.Forward(x))
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := p.Grad.Data[i]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %d elem %d: analytic %.8f vs numeric %.8f", name, pi, i, got, num)
			}
		}
	}
	// Input gradients.
	if _, isEmb := m.(*Embedding); !isEmb {
		for i := range x.Data {
			orig := x.Data[i]
			x.Data[i] = orig + eps
			lp, _ := scalarLoss(m.Forward(x))
			x.Data[i] = orig - eps
			lm, _ := scalarLoss(m.Forward(x))
			x.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := dx.Data[i]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: input elem %d: analytic %.8f vs numeric %.8f", name, i, got, num)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	checkModuleGradients(t, "Linear", NewLinear(4, 3, r), Randn(5, 4, 1, r), 1e-5)
}

func TestReLUGradients(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Keep inputs away from the kink at 0.
	x := Randn(4, 6, 1, r)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.1 {
			x.Data[i] += 0.2
		}
	}
	checkModuleGradients(t, "ReLU", &ReLU{}, x, 1e-5)
}

func TestSigmoidTanhGradients(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	checkModuleGradients(t, "Sigmoid", &Sigmoid{}, Randn(3, 5, 1, r), 1e-5)
	checkModuleGradients(t, "Tanh", &Tanh{}, Randn(3, 5, 1, r), 1e-5)
}

func TestLayerNormGradients(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	checkModuleGradients(t, "LayerNorm", NewLayerNorm(6), Randn(4, 6, 1.5, r), 1e-4)
}

func TestEmbeddingGradients(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	emb := NewEmbedding(10, 3, r)
	x := FromRows([][]float64{{0, 5, 9}, {2, 2, 7}})
	checkModuleGradients(t, "Embedding", emb, x, 1e-5)
}

func TestEmbeddingClampsOutOfRangeIDs(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	emb := NewEmbedding(4, 2, r)
	x := FromRows([][]float64{{-3, 99}})
	y := emb.Forward(x)
	want0 := emb.Table.W.Row(0)
	want3 := emb.Table.W.Row(3)
	if y.At(0, 0) != want0[0] || y.At(0, 2) != want3[0] {
		t.Fatal("out-of-range ids should clamp to table bounds")
	}
}

func TestMultiHeadAttentionGradients(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	mha := NewMultiHeadAttention(8, 2, r)
	checkModuleGradients(t, "MHA", mha, Randn(5, 8, 1, r), 1e-4)
}

func TestSequentialGradients(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	seq := NewSequential(
		NewLinear(4, 8, r),
		&Tanh{},
		NewLayerNorm(8),
		NewLinear(8, 2, r),
	)
	checkModuleGradients(t, "Sequential", seq, Randn(3, 4, 1, r), 1e-4)
}

func TestCrossAttentionGradients(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ca := NewCrossAttention(8, 2, r)
	x := Randn(3, 8, 1, r)
	ctx := Randn(4, 8, 1, r)

	for _, p := range ca.Params() {
		p.Grad.Zero()
	}
	y := ca.ForwardQKV(x, ctx)
	_, dy := scalarLoss(y)
	dx, dctx := ca.BackwardQKV(dy)

	const eps, tol = 1e-5, 1e-4
	lossAt := func() float64 {
		l, _ := scalarLoss(ca.ForwardQKV(x, ctx))
		return l
	}
	for pi, p := range ca.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossAt()
			p.W.Data[i] = orig - eps
			lm := lossAt()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.Grad.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("cross-attn param %d elem %d: analytic %.8f vs numeric %.8f", pi, i, p.Grad.Data[i], num)
			}
		}
	}
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossAt()
		x.Data[i] = orig - eps
		lm := lossAt()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("cross-attn dx elem %d: analytic %.8f vs numeric %.8f", i, dx.Data[i], num)
		}
	}
	for i := range ctx.Data {
		orig := ctx.Data[i]
		ctx.Data[i] = orig + eps
		lp := lossAt()
		ctx.Data[i] = orig - eps
		lm := lossAt()
		ctx.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-dctx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("cross-attn dctx elem %d: analytic %.8f vs numeric %.8f", i, dctx.Data[i], num)
		}
	}
}

func TestSoftmaxCELossGradients(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	logits := Randn(4, 5, 1, r)
	labels := []int{0, 2, 4, 1}
	_, grad := SoftmaxCELoss(logits, labels)
	const eps, tol = 1e-6, 1e-5
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCELoss(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCELoss(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("softmaxCE elem %d: analytic %.8f vs numeric %.8f", i, grad.Data[i], num)
		}
	}
}

func TestBCEWithLogitsGradients(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	logits := Randn(6, 1, 2, r)
	target := NewMatrix(6, 1)
	for i := range target.Data {
		if r.Intn(2) == 0 {
			target.Data[i] = 1
		}
	}
	_, grad := BCEWithLogitsLoss(logits, target)
	const eps, tol = 1e-6, 1e-5
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := BCEWithLogitsLoss(logits, target)
		logits.Data[i] = orig - eps
		lm, _ := BCEWithLogitsLoss(logits, target)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("bce elem %d: analytic %.8f vs numeric %.8f", i, grad.Data[i], num)
		}
	}
}

func TestMSELossGradients(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	pred := Randn(5, 2, 1, r)
	target := Randn(5, 2, 1, r)
	_, grad := MSELoss(pred, target)
	const eps, tol = 1e-6, 1e-5
	for i := range pred.Data {
		orig := pred.Data[i]
		pred.Data[i] = orig + eps
		lp, _ := MSELoss(pred, target)
		pred.Data[i] = orig - eps
		lm, _ := MSELoss(pred, target)
		pred.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("mse elem %d: analytic %.8f vs numeric %.8f", i, grad.Data[i], num)
		}
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	d := NewDropout(0.5, r)
	x := Randn(10, 10, 1, r)
	d.SetTraining(false)
	if y := d.Forward(x); y != x {
		t.Fatal("eval-mode dropout must be identity")
	}
	if dy := d.Backward(x); dy != x {
		t.Fatal("eval-mode dropout backward must be identity")
	}
	d.SetTraining(true)
	y := d.Forward(x)
	var zeros int
	for i := range y.Data {
		if y.Data[i] == 0 {
			zeros++
		} else if !almostEq(y.Data[i], x.Data[i]*2, 1e-12) {
			t.Fatal("survivors must be scaled by 1/(1-p)")
		}
	}
	if zeros == 0 || zeros == len(y.Data) {
		t.Fatalf("dropout should zero some but not all entries (zeros=%d)", zeros)
	}
	dy := d.Backward(x)
	for i := range dy.Data {
		if y.Data[i] == 0 && dy.Data[i] != 0 {
			t.Fatal("gradient must not flow through dropped entries")
		}
	}
}
