package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := Randn(m, k, 1, r)
		b := Randn(k, n, 1, r)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range got.Data {
			if !almostEq(got.Data[i], want.Data[i], 1e-9) {
				return false
			}
		}
		// MatMulBT(a, b) == a × bᵀ
		bt := Randn(n, k, 1, r)
		btT := NewMatrix(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				btT.Set(j, i, bt.At(i, j))
			}
		}
		g2 := MatMulBT(a, bt)
		w2 := naiveMatMul(a, btT)
		for i := range g2.Data {
			if !almostEq(g2.Data[i], w2.Data[i], 1e-9) {
				return false
			}
		}
		// MatMulAT(a, c) == aᵀ × c
		c := Randn(m, n, 1, r)
		aT := NewMatrix(k, m)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				aT.Set(j, i, a.At(i, j))
			}
		}
		g3 := MatMulAT(a, c)
		w3 := naiveMatMul(aT, c)
		for i := range g3.Data {
			if !almostEq(g3.Data[i], w3.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := Randn(3, 4, 1, r)
	b := Randn(3, 4, 1, r)
	sum := Add(a, b)
	diff := Sub(a, b)
	had := Hadamard(a, b)
	sc := Scale(a, 2.5)
	for i := range a.Data {
		if sum.Data[i] != a.Data[i]+b.Data[i] ||
			diff.Data[i] != a.Data[i]-b.Data[i] ||
			had.Data[i] != a.Data[i]*b.Data[i] ||
			sc.Data[i] != 2.5*a.Data[i] {
			t.Fatal("elementwise op wrong")
		}
	}
	cp := a.Clone()
	AddInPlace(cp, b)
	for i := range cp.Data {
		if cp.Data[i] != sum.Data[i] {
			t.Fatal("AddInPlace wrong")
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := Randn(5, 7, 3, r)
	s := SoftmaxRows(a)
	for i := 0; i < s.Rows; i++ {
		var total float64
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 {
				t.Fatal("softmax out of range")
			}
			total += v
		}
		if !almostEq(total, 1, 1e-9) {
			t.Fatalf("row %d sums to %v", i, total)
		}
	}
}

func TestConcatVStackMean(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5}, {6}})
	c := Concat(a, b)
	if c.Cols != 3 || c.At(0, 2) != 5 || c.At(1, 2) != 6 {
		t.Fatal("Concat wrong")
	}
	d := FromRows([][]float64{{7, 8}})
	v := VStack(a, d)
	if v.Rows != 3 || v.At(2, 0) != 7 {
		t.Fatal("VStack wrong")
	}
	m := MeanRows(a)
	if m.At(0, 0) != 2 || m.At(0, 1) != 3 {
		t.Fatal("MeanRows wrong")
	}
	if MeanRows(NewMatrix(0, 2)).At(0, 0) != 0 {
		t.Fatal("MeanRows of empty should be zero")
	}
}

func TestAddRowVecAndAccessors(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	out := AddRowVec(a, []float64{10, 20})
	if out.At(0, 0) != 11 || out.At(1, 1) != 24 {
		t.Fatal("AddRowVec wrong")
	}
	a.Set(0, 0, 9)
	if a.At(0, 0) != 9 {
		t.Fatal("Set/At wrong")
	}
	row := a.Row(1)
	row[0] = 42
	if a.At(1, 0) != 42 {
		t.Fatal("Row should be a view")
	}
	a.Zero()
	if a.Norm2() != 0 {
		t.Fatal("Zero/Norm2 wrong")
	}
}

func TestShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	a := NewMatrix(2, 3)
	b := NewMatrix(4, 5)
	expectPanic("MatMul", func() { MatMul(a, b) })
	expectPanic("Add", func() { Add(a, b) })
	expectPanic("Concat", func() { Concat(a, NewMatrix(3, 1)) })
	expectPanic("VStack", func() { VStack(a, NewMatrix(1, 9)) })
	expectPanic("FromSlice", func() { FromSlice(2, 2, []float64{1}) })
	expectPanic("FromRows", func() { FromRows([][]float64{{1, 2}, {3}}) })
	expectPanic("AddRowVec", func() { AddRowVec(a, []float64{1}) })
}
