package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MultiHeadAttention is scaled dot-product self-attention over a sequence.
// Input and output are [seq, Dim] matrices; batches of sequences are looped
// externally, which conveniently supports variable-length plan trees.
// This is the "multi-head attention" block of the paper's analyzer module.
type MultiHeadAttention struct {
	Dim, Heads     int
	Wq, Wk, Wv, Wo *Param

	lastX        *Matrix
	lastQ, lastK *Matrix
	lastV, lastO *Matrix
	lastAttn     []*Matrix // one [n,n] attention matrix per head
}

// NewMultiHeadAttention creates an attention block; dim must be divisible by
// heads.
func NewMultiHeadAttention(dim, heads int, r *rand.Rand) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by heads %d", dim, heads))
	}
	std := math.Sqrt(2.0 / float64(2*dim))
	return &MultiHeadAttention{
		Dim:   dim,
		Heads: heads,
		Wq:    NewParam("Wq", Randn(dim, dim, std, r)),
		Wk:    NewParam("Wk", Randn(dim, dim, std, r)),
		Wv:    NewParam("Wv", Randn(dim, dim, std, r)),
		Wo:    NewParam("Wo", Randn(dim, dim, std, r)),
	}
}

// headView extracts the columns of head h as an n×dh matrix copy.
func headView(m *Matrix, h, dh int) *Matrix {
	out := NewMatrix(m.Rows, dh)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[h*dh:(h+1)*dh])
	}
	return out
}

// headWrite adds src (n×dh) into the columns of head h of dst.
func headWrite(dst, src *Matrix, h, dh int) {
	for i := 0; i < src.Rows; i++ {
		drow := dst.Row(i)[h*dh : (h+1)*dh]
		srow := src.Row(i)
		for j, v := range srow {
			drow[j] += v
		}
	}
}

// Forward implements Module.
func (a *MultiHeadAttention) Forward(x *Matrix) *Matrix {
	a.lastX = x
	a.lastQ = MatMul(x, a.Wq.W)
	a.lastK = MatMul(x, a.Wk.W)
	a.lastV = MatMul(x, a.Wv.W)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	a.lastAttn = make([]*Matrix, a.Heads)
	o := NewMatrix(x.Rows, a.Dim)
	for h := 0; h < a.Heads; h++ {
		qh := headView(a.lastQ, h, dh)
		kh := headView(a.lastK, h, dh)
		vh := headView(a.lastV, h, dh)
		scores := Scale(MatMulBT(qh, kh), scale)
		attn := SoftmaxRows(scores)
		a.lastAttn[h] = attn
		headWrite(o, MatMul(attn, vh), h, dh)
	}
	a.lastO = o
	return MatMul(o, a.Wo.W)
}

// Backward implements Module.
func (a *MultiHeadAttention) Backward(dy *Matrix) *Matrix {
	AddInPlace(a.Wo.Grad, MatMulAT(a.lastO, dy))
	do := MatMulBT(dy, a.Wo.W)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	dq := NewMatrix(a.lastQ.Rows, a.Dim)
	dk := NewMatrix(a.lastK.Rows, a.Dim)
	dv := NewMatrix(a.lastV.Rows, a.Dim)
	for h := 0; h < a.Heads; h++ {
		qh := headView(a.lastQ, h, dh)
		kh := headView(a.lastK, h, dh)
		vh := headView(a.lastV, h, dh)
		doh := headView(do, h, dh)
		attn := a.lastAttn[h]
		dAttn := MatMulBT(doh, vh)
		dVh := MatMulAT(attn, doh)
		dScores := Scale(SoftmaxBackwardRows(attn, dAttn), scale)
		dQh := MatMul(dScores, kh)
		dKh := MatMulAT(dScores, qh)
		headWrite(dq, dQh, h, dh)
		headWrite(dk, dKh, h, dh)
		headWrite(dv, dVh, h, dh)
	}
	AddInPlace(a.Wq.Grad, MatMulAT(a.lastX, dq))
	AddInPlace(a.Wk.Grad, MatMulAT(a.lastX, dk))
	AddInPlace(a.Wv.Grad, MatMulAT(a.lastX, dv))
	dx := MatMulBT(dq, a.Wq.W)
	AddInPlace(dx, MatMulBT(dk, a.Wk.W))
	AddInPlace(dx, MatMulBT(dv, a.Wv.W))
	return dx
}

// Params implements Module.
func (a *MultiHeadAttention) Params() []*Param {
	return []*Param{a.Wq, a.Wk, a.Wv, a.Wo}
}

// CrossAttention attends a query sequence over a separate context sequence
// (keys/values). It is the fusion block of the paper's learned-optimizer
// encoder: plan tokens attend over system-condition tokens. It is not a
// Module because it takes two inputs.
type CrossAttention struct {
	Dim, Heads     int
	Wq, Wk, Wv, Wo *Param

	lastX, lastCtx *Matrix
	lastQ, lastK   *Matrix
	lastV, lastO   *Matrix
	lastAttn       []*Matrix
}

// NewCrossAttention creates a cross-attention block.
func NewCrossAttention(dim, heads int, r *rand.Rand) *CrossAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: cross-attention dim %d not divisible by heads %d", dim, heads))
	}
	std := math.Sqrt(2.0 / float64(2*dim))
	return &CrossAttention{
		Dim:   dim,
		Heads: heads,
		Wq:    NewParam("Wq", Randn(dim, dim, std, r)),
		Wk:    NewParam("Wk", Randn(dim, dim, std, r)),
		Wv:    NewParam("Wv", Randn(dim, dim, std, r)),
		Wo:    NewParam("Wo", Randn(dim, dim, std, r)),
	}
}

// ForwardQKV computes cross-attention: queries from x [m,d], keys/values
// from ctx [n,d]; output is [m,d].
func (a *CrossAttention) ForwardQKV(x, ctx *Matrix) *Matrix {
	a.lastX, a.lastCtx = x, ctx
	a.lastQ = MatMul(x, a.Wq.W)
	a.lastK = MatMul(ctx, a.Wk.W)
	a.lastV = MatMul(ctx, a.Wv.W)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	a.lastAttn = make([]*Matrix, a.Heads)
	o := NewMatrix(x.Rows, a.Dim)
	for h := 0; h < a.Heads; h++ {
		qh := headView(a.lastQ, h, dh)
		kh := headView(a.lastK, h, dh)
		vh := headView(a.lastV, h, dh)
		attn := SoftmaxRows(Scale(MatMulBT(qh, kh), scale))
		a.lastAttn[h] = attn
		headWrite(o, MatMul(attn, vh), h, dh)
	}
	a.lastO = o
	return MatMul(o, a.Wo.W)
}

// BackwardQKV propagates gradients to both inputs, returning (dx, dctx).
func (a *CrossAttention) BackwardQKV(dy *Matrix) (*Matrix, *Matrix) {
	AddInPlace(a.Wo.Grad, MatMulAT(a.lastO, dy))
	do := MatMulBT(dy, a.Wo.W)
	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	dq := NewMatrix(a.lastQ.Rows, a.Dim)
	dk := NewMatrix(a.lastK.Rows, a.Dim)
	dv := NewMatrix(a.lastV.Rows, a.Dim)
	for h := 0; h < a.Heads; h++ {
		qh := headView(a.lastQ, h, dh)
		kh := headView(a.lastK, h, dh)
		vh := headView(a.lastV, h, dh)
		doh := headView(do, h, dh)
		attn := a.lastAttn[h]
		dAttn := MatMulBT(doh, vh)
		dVh := MatMulAT(attn, doh)
		dScores := Scale(SoftmaxBackwardRows(attn, dAttn), scale)
		dQh := MatMul(dScores, kh)
		dKh := MatMulAT(dScores, qh)
		headWrite(dq, dQh, h, dh)
		headWrite(dk, dKh, h, dh)
		headWrite(dv, dVh, h, dh)
	}
	AddInPlace(a.Wq.Grad, MatMulAT(a.lastX, dq))
	AddInPlace(a.Wk.Grad, MatMulAT(a.lastCtx, dk))
	AddInPlace(a.Wv.Grad, MatMulAT(a.lastCtx, dv))
	dx := MatMulBT(dq, a.Wq.W)
	dctx := MatMulBT(dk, a.Wk.W)
	AddInPlace(dctx, MatMulBT(dv, a.Wv.W))
	return dx, dctx
}

// Params returns the trainable parameters.
func (a *CrossAttention) Params() []*Param {
	return []*Param{a.Wq, a.Wk, a.Wv, a.Wo}
}
