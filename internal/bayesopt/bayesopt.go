// Package bayesopt is a small Bayesian-optimization library in the TPE
// (tree-structured Parzen estimator) style. The paper uses Bayesian
// optimization twice: the filtering phase of learned-CC adaptation generates
// candidate decision models with it, and the learned query optimizer's
// pre-training synthesizes diverse data distributions and workloads with it.
package bayesopt

import (
	"math"
	"math/rand"
	"sort"
)

// Param is one continuous search dimension.
type Param struct {
	Name   string
	Lo, Hi float64
}

type observation struct {
	x []float64
	y float64
}

// Optimizer maximizes an objective over a box domain.
type Optimizer struct {
	Params []Param
	// Gamma is the quantile split between "good" and "bad" observations.
	Gamma float64
	// Candidates is the number of TPE proposals scored per Suggest.
	Candidates int
	// Explore is the probability of a uniform random suggestion.
	Explore float64

	rng  *rand.Rand
	hist []observation
}

// New creates an optimizer over the given parameters.
func New(params []Param, seed int64) *Optimizer {
	return &Optimizer{
		Params:     params,
		Gamma:      0.25,
		Candidates: 24,
		Explore:    0.15,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// uniform samples the box uniformly.
func (o *Optimizer) uniform() []float64 {
	x := make([]float64, len(o.Params))
	for i, p := range o.Params {
		x[i] = p.Lo + o.rng.Float64()*(p.Hi-p.Lo)
	}
	return x
}

// Suggest proposes the next point to evaluate.
func (o *Optimizer) Suggest() []float64 {
	if len(o.hist) < 4 || o.rng.Float64() < o.Explore {
		return o.uniform()
	}
	// Split history into good (top gamma fraction) and bad.
	sorted := append([]observation(nil), o.hist...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].y > sorted[j].y })
	nGood := int(math.Ceil(o.Gamma * float64(len(sorted))))
	if nGood < 1 {
		nGood = 1
	}
	good := sorted[:nGood]
	bad := sorted[nGood:]

	bestScore := math.Inf(-1)
	var best []float64
	for c := 0; c < o.Candidates; c++ {
		// Sample around a random good point (Parzen window).
		seedPt := good[o.rng.Intn(len(good))]
		x := make([]float64, len(o.Params))
		for i, p := range o.Params {
			width := (p.Hi - p.Lo) * 0.15
			v := seedPt.x[i] + o.rng.NormFloat64()*width
			if v < p.Lo {
				v = p.Lo
			}
			if v > p.Hi {
				v = p.Hi
			}
			x[i] = v
		}
		score := o.density(good, x) / (o.density(bad, x) + 1e-9)
		if score > bestScore {
			bestScore = score
			best = x
		}
	}
	return best
}

// density is a Parzen-window (Gaussian KDE) estimate over a point set.
func (o *Optimizer) density(obs []observation, x []float64) float64 {
	if len(obs) == 0 {
		return 1e-9
	}
	var total float64
	for _, ob := range obs {
		var d2 float64
		for i, p := range o.Params {
			width := (p.Hi - p.Lo) * 0.2
			if width <= 0 {
				width = 1
			}
			d := (x[i] - ob.x[i]) / width
			d2 += d * d
		}
		total += math.Exp(-0.5 * d2)
	}
	return total / float64(len(obs))
}

// Observe records the objective value at x (higher is better).
func (o *Optimizer) Observe(x []float64, y float64) {
	cp := append([]float64(nil), x...)
	o.hist = append(o.hist, observation{x: cp, y: y})
}

// Best returns the best observed point and value.
func (o *Optimizer) Best() ([]float64, float64) {
	if len(o.hist) == 0 {
		return nil, math.Inf(-1)
	}
	best := o.hist[0]
	for _, ob := range o.hist[1:] {
		if ob.y > best.y {
			best = ob
		}
	}
	return append([]float64(nil), best.x...), best.y
}

// History returns the number of observations so far.
func (o *Optimizer) History() int { return len(o.hist) }
