package bayesopt

import (
	"math"
	"testing"
)

func TestOptimizerFindsQuadraticOptimum(t *testing.T) {
	// Maximize -(x-0.7)² - (y+0.3)² over [-1,1]²; optimum at (0.7, -0.3).
	opt := New([]Param{{Name: "x", Lo: -1, Hi: 1}, {Name: "y", Lo: -1, Hi: 1}}, 42)
	obj := func(x []float64) float64 {
		return -(x[0]-0.7)*(x[0]-0.7) - (x[1]+0.3)*(x[1]+0.3)
	}
	for i := 0; i < 120; i++ {
		x := opt.Suggest()
		opt.Observe(x, obj(x))
	}
	best, y := opt.Best()
	if y < -0.05 {
		t.Fatalf("best objective %.4f at %v; TPE failed to localize optimum", y, best)
	}
	if math.Abs(best[0]-0.7) > 0.25 || math.Abs(best[1]+0.3) > 0.25 {
		t.Fatalf("best point %v far from optimum", best)
	}
	if opt.History() != 120 {
		t.Fatalf("history = %d", opt.History())
	}
}

func TestOptimizerBeatsRandomSearch(t *testing.T) {
	// On a narrow peak, TPE should find better points than pure random with
	// the same budget (deterministic seeds make this stable).
	obj := func(x []float64) float64 {
		return -math.Abs(x[0]-0.42)*10 - math.Abs(x[1]-0.13)*10
	}
	params := []Param{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}

	tpe := New(params, 7)
	for i := 0; i < 80; i++ {
		x := tpe.Suggest()
		tpe.Observe(x, obj(x))
	}
	_, tpeBest := tpe.Best()

	random := New(params, 7)
	random.Explore = 1.0 // force uniform sampling
	for i := 0; i < 80; i++ {
		x := random.Suggest()
		random.Observe(x, obj(x))
	}
	_, rndBest := random.Best()

	if tpeBest < rndBest-0.2 {
		t.Fatalf("TPE (%.3f) should not trail random (%.3f) badly", tpeBest, rndBest)
	}
}

func TestSuggestionsStayInBounds(t *testing.T) {
	opt := New([]Param{{Lo: 2, Hi: 3}, {Lo: -5, Hi: -4}}, 1)
	for i := 0; i < 60; i++ {
		x := opt.Suggest()
		if x[0] < 2 || x[0] > 3 || x[1] < -5 || x[1] > -4 {
			t.Fatalf("suggestion out of bounds: %v", x)
		}
		opt.Observe(x, -x[0]*x[1])
	}
}

func TestBestOnEmpty(t *testing.T) {
	opt := New([]Param{{Lo: 0, Hi: 1}}, 1)
	x, y := opt.Best()
	if x != nil || !math.IsInf(y, -1) {
		t.Fatal("empty best should be -inf")
	}
}
