// Quickstart: open a database, run DDL/DML/queries, and execute the
// paper's PREDICT extension end to end.
package main

import (
	"fmt"
	"log"

	"neurdb"
)

func main() {
	db := neurdb.Open(neurdb.DefaultConfig())

	must := func(sql string) *neurdb.Result {
		res, err := db.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	// Plain SQL.
	must(`CREATE TABLE review (id INT PRIMARY KEY, brand_name TEXT, stars INT, helpful INT, score DOUBLE)`)
	for i := 0; i < 500; i++ {
		stars := i % 5
		helpful := (i * 7) % 20
		score := float64(stars)*0.8 + float64(helpful)*0.05
		must(fmt.Sprintf(`INSERT INTO review VALUES (%d, 'brand%d', %d, %d, %f)`,
			i, i%10, stars, helpful, score))
	}
	// A few rows with missing scores for the brand we care about.
	for i := 500; i < 505; i++ {
		must(fmt.Sprintf(`INSERT INTO review VALUES (%d, 'Special Goods', %d, %d, NULL)`,
			i, i%5, (i*3)%20))
	}
	must(`ANALYZE review`)

	res := must(`SELECT brand_name, COUNT(*), AVG(score) FROM review GROUP BY brand_name LIMIT 3`)
	fmt.Println("group-by sample:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row)
	}

	// EXPLAIN shows the physical plan.
	res = must(`EXPLAIN SELECT score FROM review WHERE id = 42`)
	fmt.Println("plan:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0].S)
	}

	// The paper's Listing 1: in-database AI analytics with PREDICT.
	res = must(`PREDICT VALUE OF score
		FROM review
		WHERE brand_name = 'Special Goods'
		TRAIN ON *
		WITH brand_name <> 'Special Goods'`)
	fmt.Println(res.Message)
	for i, p := range res.Predictions {
		fmt.Printf("  prediction %d: %.3f\n", i, p)
	}

	// Running PREDICT again reuses the stored model via fine-tuning
	// (incremental update through the layered model store).
	res = must(`PREDICT VALUE OF score
		FROM review
		WHERE brand_name = 'Special Goods'
		TRAIN ON *
		WITH brand_name <> 'Special Goods'`)
	fmt.Println(res.Message)
}
