// Quickstart: open a database, run DDL/DML/queries through the prepared,
// parameterized, streaming client API, and execute the paper's PREDICT
// extension end to end.
package main

import (
	"fmt"
	"log"

	"neurdb"
)

func main() {
	db := neurdb.Open(neurdb.DefaultConfig())

	must := func(sql string, args ...any) *neurdb.Result {
		res, err := db.Exec(sql, args...)
		if err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
		return res
	}

	// Plain SQL.
	must(`CREATE TABLE review (id INT PRIMARY KEY, brand_name TEXT, stars INT, helpful INT, score DOUBLE)`)

	// A prepared INSERT parses, binds, and plans once; every Exec after that
	// only binds arguments. Re-executions ride the page-batched insert path.
	ins, err := db.Prepare(`INSERT INTO review VALUES (?, ?, ?, ?, ?)`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		stars := i % 5
		helpful := (i * 7) % 20
		score := float64(stars)*0.8 + float64(helpful)*0.05
		if _, err := ins.Exec(i, fmt.Sprintf("brand%d", i%10), stars, helpful, score); err != nil {
			log.Fatal(err)
		}
	}
	// A few rows with missing scores for the brand we care about; NULL
	// passes through as a nil argument.
	for i := 500; i < 505; i++ {
		if _, err := ins.Exec(i, "Special Goods", i%5, (i*3)%20, nil); err != nil {
			log.Fatal(err)
		}
	}
	must(`ANALYZE review`)

	// Streaming query: rows arrive one executor batch at a time; Scan
	// converts column values into Go variables.
	rows, err := db.Query(`SELECT brand_name, COUNT(*), AVG(score) FROM review GROUP BY brand_name LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("group-by sample:")
	for rows.Next() {
		var brand string
		var count int64
		var avg float64
		if err := rows.Scan(&brand, &count, &avg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %d reviews, avg score %.2f\n", brand, count, avg)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// A prepared point SELECT hits the shared plan cache on every execution.
	point, err := db.Prepare(`SELECT score FROM review WHERE id = ?`)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []int{7, 42, 99} {
		res, err := point.Exec(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("score(id=%d) = %s\n", id, res.Rows[0][0])
	}
	hits, misses := db.PlanCacheStats()
	fmt.Printf("plan cache: %d hits, %d misses\n", hits, misses)

	// EXPLAIN shows the physical plan (parameter probes keep index scans).
	res := must(`EXPLAIN SELECT score FROM review WHERE id = 42`)
	fmt.Println("plan:")
	for _, row := range res.Rows {
		fmt.Printf("  %s\n", row[0].S)
	}

	// The paper's Listing 1: in-database AI analytics with PREDICT.
	res = must(`PREDICT VALUE OF score
		FROM review
		WHERE brand_name = 'Special Goods'
		TRAIN ON *
		WITH brand_name <> 'Special Goods'`)
	fmt.Println(res.Message)
	for i, p := range res.Predictions {
		fmt.Printf("  prediction %d: %.3f\n", i, p)
	}

	// Running PREDICT again reuses the stored model via fine-tuning
	// (incremental update through the layered model store).
	res = must(`PREDICT VALUE OF score
		FROM review
		WHERE brand_name = 'Special Goods'
		TRAIN ON *
		WITH brand_name <> 'Special Goods'`)
	fmt.Println(res.Message)
}
