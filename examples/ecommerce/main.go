// E-commerce (Workload E): click-through-rate prediction over a drifting
// Avazu-like stream, demonstrating the AI engine's streaming training path
// and the incremental model update that adapts to distribution drift
// (paper Fig. 6).
package main

import (
	"fmt"
	"log"

	"neurdb/internal/aiengine"
	"neurdb/internal/models"
	"neurdb/internal/workload"
)

func main() {
	const batchSize, batchesPerCluster = 256, 8

	spec := models.Spec{
		Arch: "armnet", Fields: workload.AvazuFields, Vocab: workload.AvazuTotalVocab,
		EmbDim: 8, Hidden: 64, Seed: 1,
	}
	store := models.NewStore()
	engine := aiengine.NewEngine(store)

	// Train on cluster C1 through the streaming protocol.
	gen := workload.NewAvazu(7)
	gen.SetCluster(0)
	loader := aiengine.NewStreamingLoader(
		gen.NewBatchSource(batchSize, batchesPerCluster, 0),
		workload.AvazuFeaturizer, 16)
	out, err := engine.Train(spec, aiengine.TrainConfig{
		Name: "ctr", BatchSize: batchSize, Window: 16, LR: 0.01,
	}, loader)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on C1: %d batches, %.0f samples/s, final loss %.4f\n",
		out.Batches, out.Throughput, out.Losses[len(out.Losses)-1])

	// The data drifts: clusters C2..C5 arrive. Fine-tune the head only —
	// the frozen embedding is shared across versions in the model store.
	for c := 1; c < workload.AvazuClusters; c++ {
		gen.SetCluster(c)
		ft, err := engine.FineTune(out.MID, 0, 2, 0.05,
			aiengine.NewStreamingLoader(
				gen.NewBatchSource(batchSize, batchesPerCluster, 0),
				workload.AvazuFeaturizer, 16))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("drift to C%d: fine-tuned to version ts=%d, final loss %.4f\n",
			c+1, ft.TS, ft.Losses[len(ft.Losses)-1])
	}
	fmt.Printf("model versions stored: %d, total bytes: %d (layers shared across versions)\n",
		len(store.Versions(out.MID)), store.StorageBytes())
}
