// The remote example shows NeurDB as a networked server: it boots a wire-
// protocol server in-process on a loopback port, then drives it two ways —
// with the native client package (Connect / Prepare / streaming Rows) and
// with the standard database/sql interface (sql.Open("neurdb", addr)).
// Server-side prepared statements share the engine's plan cache, so the
// repeated parameterized queries below plan once and bind per call.
package main

import (
	"database/sql"
	"fmt"
	"log"
	"net"
	"time"

	"neurdb"
	"neurdb/client"
	"neurdb/internal/server"
)

func main() {
	// Boot an in-process server; a real deployment runs cmd/neurdb-server.
	db := neurdb.Open(neurdb.DefaultConfig())
	srv := server.New(db, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(2 * time.Second)
	addr := ln.Addr().String()
	fmt.Printf("server on %s\n\n", addr)

	// --- Native client: prepared statements + streaming rows.
	conn, err := client.Connect(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	must(conn.Exec(`CREATE TABLE sensor (id INT PRIMARY KEY, site TEXT, temp DOUBLE)`))

	ins, err := conn.Prepare(`INSERT INTO sensor VALUES (?, ?, ?)`)
	if err != nil {
		log.Fatal(err)
	}
	sites := []string{"north", "south", "east", "west"}
	for i := 0; i < 400; i++ {
		if _, err := ins.Exec(i, sites[i%len(sites)], 15.0+float64(i%120)*0.25); err != nil {
			log.Fatal(err)
		}
	}
	ins.Close()

	sel, err := conn.Prepare(`SELECT id, temp FROM sensor WHERE site = ? AND temp > ? ORDER BY id LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	for _, site := range sites {
		rows, err := sel.Query(site, 40.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hot sensors at %s:\n", site)
		for rows.Next() {
			var id int64
			var temp float64
			if err := rows.Scan(&id, &temp); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  #%d %.2f°C\n", id, temp)
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		rows.Close()
	}
	sel.Close()

	// --- database/sql: the same server through standard Go idioms.
	sdb, err := sql.Open("neurdb", addr)
	if err != nil {
		log.Fatal(err)
	}
	defer sdb.Close()

	avg, err := sdb.Prepare(`SELECT AVG(temp), COUNT(*) FROM sensor WHERE site = ?`)
	if err != nil {
		log.Fatal(err)
	}
	defer avg.Close()
	fmt.Println("\nper-site averages via database/sql:")
	for _, site := range sites {
		var mean float64
		var n int64
		if err := avg.QueryRow(site).Scan(&mean, &n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %.3f°C over %d readings\n", site, mean, n)
	}

	// The repeated prepared executions above shared one cached plan per
	// statement shape.
	hits, misses := db.PlanCacheStats()
	fmt.Printf("\nplan cache: %d hits / %d misses (hit rate %.3f)\n",
		hits, misses, float64(hits)/float64(hits+misses))
}

func must(res *client.Result, err error) {
	if err != nil {
		log.Fatal(err)
	}
	_ = res
}
