// Learned query optimizer: builds the STATS-like schema, drifts the data,
// and shows the stale-statistics cost planner picking a different (worse)
// plan than live-condition planning — the effect the learned optimizer
// exploits (paper Fig. 8).
package main

import (
	"fmt"
	"log"
	"strings"

	"neurdb"
	"neurdb/internal/executor"
	"neurdb/internal/rel"
	"neurdb/internal/txn"
	"neurdb/internal/workload"
)

func main() {
	db := neurdb.Open(neurdb.DefaultConfig())
	sw := workload.NewStats(1, 42)

	// Create schema + data + indexes.
	for _, def := range sw.Tables() {
		if _, err := db.Catalog().Create(def.Name, rel.NewSchema(def.Cols...)); err != nil {
			log.Fatal(err)
		}
		for _, col := range def.IndexCols {
			if _, err := db.Exec(fmt.Sprintf("CREATE INDEX %s_%s ON %s (%s)", def.Name, col, def.Name, col)); err != nil {
				log.Fatal(err)
			}
		}
		tbl, _ := db.Catalog().Get(def.Name)
		mgr := db.TxnManager()
		tx := mgr.Begin(txn.Snapshot, false)
		ctx := &executor.Ctx{Mgr: mgr, Txn: tx, Cat: db.Catalog()}
		for _, row := range sw.Rows(def.Name) {
			if _, err := executor.InsertRow(ctx, tbl, row); err != nil {
				log.Fatal(err)
			}
		}
		if err := mgr.Commit(tx); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := db.Exec("ANALYZE"); err != nil {
		log.Fatal(err)
	}

	query := sw.Queries()[0]
	fmt.Println("query:", query)

	explain := func(label string) {
		res, err := db.Exec("EXPLAIN " + query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", label)
		for _, row := range res.Rows {
			fmt.Println(" ", row[0].S)
		}
	}
	explain("plan before drift (fresh statistics)")

	// Severe drift: the stale planner keeps the old statistics snapshot.
	mgr := db.TxnManager()
	for _, def := range sw.Tables() {
		rows := sw.DriftInserts(def.Name, workload.DriftSevere)
		if len(rows) == 0 {
			continue
		}
		tbl, _ := db.Catalog().Get(def.Name)
		tx := mgr.Begin(txn.Snapshot, false)
		ctx := &executor.Ctx{Mgr: mgr, Txn: tx, Cat: db.Catalog()}
		for _, row := range rows {
			if _, err := executor.InsertRow(ctx, tbl, row); err != nil {
				log.Fatal(err)
			}
		}
		if err := mgr.Commit(tx); err != nil {
			log.Fatal(err)
		}
	}

	if _, err := db.Exec("SET optimizer = 'stale'"); err != nil {
		log.Fatal(err)
	}
	explain("PostgreSQL-style plan after severe drift (STALE statistics)")

	if _, err := db.Exec("SET optimizer = 'cost'"); err != nil {
		log.Fatal(err)
	}
	explain("plan after severe drift (LIVE statistics — what NeurDB's conditions see)")

	fmt.Println("\nrun the full four-system comparison with: go run ./cmd/neurdb-bench -exp fig8")
	_ = strings.TrimSpace("")
}
