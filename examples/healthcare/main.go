// Healthcare (Workload H): disease-progression classification through the
// SQL surface — the paper's Listing 2 — including inline VALUES prediction.
package main

import (
	"fmt"
	"log"
	"strings"

	"neurdb"
	"neurdb/internal/workload"
)

func main() {
	db := neurdb.Open(neurdb.DefaultConfig())

	// Build the diabetes table (43 attributes + outcome).
	var cols []string
	for i := 0; i < workload.DiabetesFields; i++ {
		cols = append(cols, fmt.Sprintf("f%d DOUBLE", i))
	}
	cols = append(cols, "outcome INT")
	if _, err := db.Exec("CREATE TABLE diabetes (" + strings.Join(cols, ", ") + ")"); err != nil {
		log.Fatal(err)
	}

	gen := workload.NewDiabetes(3)
	var sb strings.Builder
	sb.WriteString("INSERT INTO diabetes VALUES ")
	for i, row := range gen.Batch(1500) {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('(')
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte(')')
	}
	if _, err := db.Exec(sb.String()); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec("ANALYZE diabetes"); err != nil {
		log.Fatal(err)
	}

	// Classify two new patients inline (Listing 2 shape).
	patient1 := gen.Batch(1)[0][:workload.DiabetesFields]
	patient2 := gen.Batch(1)[0][:workload.DiabetesFields]
	values := func(row []string) string { return "(" + strings.Join(row, ", ") + ")" }
	toStrs := func(row interface{ String() string }) string { return row.String() }
	_ = toStrs
	var v1, v2 []string
	for _, v := range patient1 {
		v1 = append(v1, v.String())
	}
	for _, v := range patient2 {
		v2 = append(v2, v.String())
	}
	sql := fmt.Sprintf(`PREDICT CLASS OF outcome FROM diabetes TRAIN ON * VALUES %s, %s`,
		values(v1), values(v2))
	res, err := db.Exec(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Message)
	for i, p := range res.Predictions {
		fmt.Printf("patient %d: class %v (probability %.3f)\n", i+1, res.Rows[i][0].AsInt(), p)
	}
}
