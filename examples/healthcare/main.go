// Healthcare (Workload H): disease-progression classification through the
// SQL surface — the paper's Listing 2 — including inline VALUES prediction.
package main

import (
	"fmt"
	"log"
	"strings"

	"neurdb"
	"neurdb/internal/workload"
)

func main() {
	db := neurdb.Open(neurdb.DefaultConfig())

	// Build the diabetes table (43 attributes + outcome).
	var cols []string
	for i := 0; i < workload.DiabetesFields; i++ {
		cols = append(cols, fmt.Sprintf("f%d DOUBLE", i))
	}
	cols = append(cols, "outcome INT")
	if _, err := db.Exec("CREATE TABLE diabetes (" + strings.Join(cols, ", ") + ")"); err != nil {
		log.Fatal(err)
	}

	gen := workload.NewDiabetes(3)
	var sb strings.Builder
	sb.WriteString("INSERT INTO diabetes VALUES ")
	for i, row := range gen.Batch(1500) {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('(')
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte(')')
	}
	// One multi-VALUES INSERT rides the page-batched insert path: one
	// transaction-manager call plus per-batch index/stats maintenance.
	if _, err := db.Exec(sb.String()); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec("ANALYZE diabetes"); err != nil {
		log.Fatal(err)
	}

	// Streaming sanity check over the loaded cohort with a parameter bound
	// at execution time.
	rows, err := db.Query(`SELECT COUNT(*), AVG(f0) FROM diabetes WHERE outcome = ?`, 1)
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var n int64
		var avg float64
		if err := rows.Scan(&n, &avg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("positive outcomes: %d (avg f0 %.3f)\n", n, avg)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// Classify two new patients inline (Listing 2 shape).
	patient1 := gen.Batch(1)[0][:workload.DiabetesFields]
	patient2 := gen.Batch(1)[0][:workload.DiabetesFields]
	values := func(row []string) string { return "(" + strings.Join(row, ", ") + ")" }
	var v1, v2 []string
	for _, v := range patient1 {
		v1 = append(v1, v.String())
	}
	for _, v := range patient2 {
		v2 = append(v2, v.String())
	}
	sql := fmt.Sprintf(`PREDICT CLASS OF outcome FROM diabetes TRAIN ON * VALUES %s, %s`,
		values(v1), values(v2))
	res, err := db.Exec(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Message)
	for i, p := range res.Predictions {
		fmt.Printf("patient %d: class %v (probability %.3f)\n", i+1, res.Rows[i][0].AsInt(), p)
	}
}
