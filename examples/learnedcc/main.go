// Learned concurrency control: runs the YCSB micro-benchmark under the SSI
// baseline and NeurDB's learned decision model, then demonstrates two-phase
// adaptation after a workload shift (paper Fig. 7).
package main

import (
	"fmt"
	"time"

	"neurdb/internal/cc"
	"neurdb/internal/workload"
)

func main() {
	const records = 50_000
	gen := workload.NewYCSB(records, 0.9)

	for _, threads := range []int{4, 16} {
		ssi := cc.NewEngine(cc.NewStore(records), cc.NewSSI())
		pg := ssi.Run(gen, threads, 400*time.Millisecond)

		learned := cc.NewEngine(cc.NewStore(records), cc.NewLearnedPolicy(1))
		nd := learned.Run(gen, threads, 400*time.Millisecond)

		fmt.Printf("%2d threads: SSI %8.0f txn/s (abort %4.1f%%) | learned %8.0f txn/s (abort %4.1f%%) | %.2fx\n",
			threads, pg.Throughput, pg.AbortRate*100,
			nd.Throughput, nd.AbortRate*100, nd.Throughput/pg.Throughput)
	}

	// Workload drift: switch to TPC-C-style contention and adapt.
	fmt.Println("\nworkload drift: TPC-C contention, two-phase adaptation")
	tpcc := workload.NewTPCC(1)
	store := cc.NewStore(workload.StoreSize(2))
	policy := cc.NewLearnedPolicy(2)
	engine := cc.NewEngine(store, policy)

	before := engine.Run(tpcc, 8, 300*time.Millisecond)
	fmt.Printf("before adaptation: %8.0f txn/s\n", before.Throughput)

	adapter := cc.NewAdapter(3)
	adapted := adapter.Adapt(engine, tpcc, 8, policy)
	engine.SetPolicy(adapted)

	after := engine.Run(tpcc, 8, 300*time.Millisecond)
	fmt.Printf("after adaptation:  %8.0f txn/s (filtering: Bayesian-opt candidates; refinement: RL)\n",
		after.Throughput)
}
