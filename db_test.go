package neurdb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func openTest(t *testing.T) *DB {
	t.Helper()
	return Open(DefaultConfig())
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE users (id INT PRIMARY KEY, name TEXT, age INT)`)
	mustExec(t, db, `INSERT INTO users VALUES (1, 'ann', 30), (2, 'bob', 25), (3, 'cat', 41)`)
	res := mustExec(t, db, `SELECT name FROM users WHERE age >= 30 ORDER BY age DESC`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "cat" || res.Rows[1][0].S != "ann" {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Columns[0] != "users.name" {
		t.Fatalf("columns: %v", res.Columns)
	}
}

func TestInsertColumnList(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE t (a INT, b TEXT, c DOUBLE)`)
	mustExec(t, db, `INSERT INTO t (c, a) VALUES (2.5, 7)`)
	res := mustExec(t, db, `SELECT a, b, c FROM t`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 7 || !res.Rows[0][1].IsNull() || res.Rows[0][2].AsFloat() != 2.5 {
		t.Fatalf("row: %v", res.Rows)
	}
	// Constant arithmetic in VALUES.
	mustExec(t, db, `INSERT INTO t VALUES (2 + 3 * 4, 'x', 10.0 / 4)`)
	res = mustExec(t, db, `SELECT a, c FROM t WHERE b = 'x'`)
	if res.Rows[0][0].AsInt() != 14 || res.Rows[0][1].AsFloat() != 2.5 {
		t.Fatalf("const expr: %v", res.Rows)
	}
}

func TestUpdateDeleteSQL(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE t (id INT, v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)
	res := mustExec(t, db, `UPDATE t SET v = v + 5 WHERE id <> 2`)
	if res.Affected != 2 {
		t.Fatalf("update affected %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT SUM(v) FROM t`)
	if res.Rows[0][0].AsFloat() != 70 {
		t.Fatalf("sum: %v", res.Rows)
	}
	// After the update rows are (1,15), (2,20), (3,35): only one matches.
	res = mustExec(t, db, `DELETE FROM t WHERE v > 25`)
	if res.Affected != 1 {
		t.Fatalf("delete affected %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("count: %v", res.Rows)
	}
}

func TestTransactionsCommitRollback(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	mustExec(t, db, `BEGIN`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `ROLLBACK`)
	if res := mustExec(t, db, `SELECT COUNT(*) FROM t`); res.Rows[0][0].AsInt() != 0 {
		t.Fatal("rollback did not discard insert")
	}
	mustExec(t, db, `BEGIN`)
	mustExec(t, db, `INSERT INTO t VALUES (2)`)
	mustExec(t, db, `COMMIT`)
	if res := mustExec(t, db, `SELECT COUNT(*) FROM t`); res.Rows[0][0].AsInt() != 1 {
		t.Fatal("commit lost insert")
	}
	// Errors on unbalanced txn statements.
	if _, err := db.Exec(`COMMIT`); err == nil {
		t.Fatal("commit without begin should fail")
	}
	if _, err := db.Exec(`ROLLBACK`); err == nil {
		t.Fatal("rollback without begin should fail")
	}
	mustExec(t, db, `BEGIN`)
	if _, err := db.Exec(`BEGIN`); err == nil {
		t.Fatal("nested begin should fail")
	}
	mustExec(t, db, `ROLLBACK`)
}

func TestSessionsIsolated(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	s1 := db.NewSession()
	s2 := db.NewSession()
	if _, err := s1.Exec(`BEGIN`); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// s2 doesn't see s1's uncommitted insert.
	res, err := s2.Exec(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatal("uncommitted insert leaked across sessions")
	}
	if _, err := s1.Exec(`COMMIT`); err != nil {
		t.Fatal(err)
	}
	res, _ = s2.Exec(`SELECT COUNT(*) FROM t`)
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatal("committed insert invisible")
	}
}

func TestCreateIndexAndPlans(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE big (id INT, grp INT, v DOUBLE)`)
	r := rand.New(rand.NewSource(1))
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 3000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d, %f)", i, r.Intn(50), r.Float64())
	}
	mustExec(t, db, sb.String())
	mustExec(t, db, `CREATE INDEX big_id ON big (id)`)
	mustExec(t, db, `ANALYZE big`)
	res := mustExec(t, db, `EXPLAIN SELECT v FROM big WHERE id = 1500`)
	var text strings.Builder
	for _, row := range res.Rows {
		text.WriteString(row[0].S)
		text.WriteByte('\n')
	}
	if !strings.Contains(text.String(), "IndexScan") {
		t.Fatalf("expected IndexScan:\n%s", text.String())
	}
	q := mustExec(t, db, `SELECT v FROM big WHERE id = 1500`)
	if len(q.Rows) != 1 {
		t.Fatalf("index query rows: %d", len(q.Rows))
	}
	// Hash index path.
	mustExec(t, db, `CREATE INDEX big_grp ON big (grp) USING HASH`)
	q2 := mustExec(t, db, `SELECT COUNT(*) FROM big WHERE grp = 7`)
	if q2.Rows[0][0].AsInt() == 0 {
		t.Fatal("hash-index query returned nothing")
	}
}

func TestJoinSQL(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE a (id INT, x INT)`)
	mustExec(t, db, `CREATE TABLE b (id INT, aid INT, y INT)`)
	mustExec(t, db, `INSERT INTO a VALUES (1, 10), (2, 20)`)
	mustExec(t, db, `INSERT INTO b VALUES (1, 1, 100), (2, 1, 200), (3, 2, 300)`)
	res := mustExec(t, db, `SELECT a.x, b.y FROM a, b WHERE a.id = b.aid AND b.y >= 200`)
	if len(res.Rows) != 2 {
		t.Fatalf("join rows: %v", res.Rows)
	}
}

func TestOptimizerModesSwitch(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE t (id INT)`)
	mustExec(t, db, `SET optimizer = 'stale'`)
	if db.OptimizerModeNow() != StaleCostMode {
		t.Fatal("mode not switched")
	}
	mustExec(t, db, `SET optimizer = 'learned'`)
	// LearnedMode without a trained model falls back to cost planning.
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if res := mustExec(t, db, `SELECT * FROM t`); len(res.Rows) != 1 {
		t.Fatal("learned-mode fallback broken")
	}
	if _, err := db.Exec(`SET optimizer = 'bogus'`); err == nil {
		t.Fatal("bogus mode should fail")
	}
	if _, err := db.Exec(`SET nothing = '1'`); err == nil {
		t.Fatal("unknown setting should fail")
	}
	mustExec(t, db, `SET optimizer = 'cost'`)
}

func TestStaleStatsViewServesSnapshots(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE t (v INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3)`)
	mustExec(t, db, `ANALYZE t`)
	tbl, _ := db.Catalog().Get("t")
	sv := db.StaleStatsView()
	if sv(tbl).Rows() != 3 {
		t.Fatal("snapshot rows wrong")
	}
	// Grow the table; the stale view must keep reporting 3.
	mustExec(t, db, `INSERT INTO t VALUES (4), (5)`)
	if sv(tbl).Rows() != 3 {
		t.Fatal("stale view leaked fresh stats")
	}
	if tbl.Stats.Rows() != 5 {
		t.Fatal("live stats wrong")
	}
}

func TestPredictRegressionListing1(t *testing.T) {
	// The paper's Listing 1 shape: predict missing review scores.
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE review (id INT PRIMARY KEY, brand_name TEXT, f1 INT, f2 INT, score DOUBLE)`)
	r := rand.New(rand.NewSource(2))
	var sb strings.Builder
	sb.WriteString("INSERT INTO review VALUES ")
	for i := 0; i < 600; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		f1, f2 := r.Intn(10), r.Intn(10)
		score := float64(f1)*0.4 + float64(f2)*0.1
		brand := "other"
		fmt.Fprintf(&sb, "(%d, '%s', %d, %d, %f)", i, brand, f1, f2, score)
	}
	// Rows whose score is to be predicted.
	for i := 600; i < 610; i++ {
		f1, f2 := r.Intn(10), r.Intn(10)
		fmt.Fprintf(&sb, ",(%d, 'Special Goods', %d, %d, NULL)", i, f1, f2)
	}
	mustExec(t, db, sb.String())
	mustExec(t, db, `ANALYZE review`)
	res := mustExec(t, db, `PREDICT VALUE OF score
		FROM review
		WHERE brand_name = 'Special Goods'
		TRAIN ON *
		WITH brand_name <> 'Special Goods'`)
	if len(res.Predictions) != 10 {
		t.Fatalf("predictions: %d", len(res.Predictions))
	}
	// Predictions should be in a plausible range (labels span 0..4.5).
	for _, p := range res.Predictions {
		if p < -2 || p > 7 {
			t.Fatalf("wild prediction %v", p)
		}
	}
	if !strings.Contains(res.Message, "PREDICT VALUE") {
		t.Fatalf("message: %s", res.Message)
	}
}

func TestPredictClassificationListing2(t *testing.T) {
	// The paper's Listing 2 shape: classification with inline VALUES.
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE diabetes (pregnancies INT, glucose INT, blood_pressure INT, outcome INT)`)
	r := rand.New(rand.NewSource(3))
	var sb strings.Builder
	sb.WriteString("INSERT INTO diabetes VALUES ")
	for i := 0; i < 800; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		g := r.Intn(200)
		bp := 40 + r.Intn(80)
		preg := r.Intn(10)
		outcome := 0
		if g > 120 {
			outcome = 1
		}
		fmt.Fprintf(&sb, "(%d, %d, %d, %d)", preg, g, bp, outcome)
	}
	mustExec(t, db, sb.String())
	mustExec(t, db, `ANALYZE diabetes`)
	res := mustExec(t, db, `PREDICT CLASS OF outcome
		FROM diabetes
		TRAIN ON pregnancies, glucose, blood_pressure
		VALUES (6, 190, 72), (1, 30, 66)`)
	if len(res.Predictions) != 2 {
		t.Fatalf("predictions: %d", len(res.Predictions))
	}
	if res.Rows[0][0].AsFloat() != 1 || res.Rows[1][0].AsFloat() != 0 {
		t.Fatalf("classes: %v (probs %v)", res.Rows, res.Predictions)
	}
}

func TestPredictReusesModelViaFineTune(t *testing.T) {
	db := openTest(t)
	mustExec(t, db, `CREATE TABLE m (f INT, target DOUBLE)`)
	var sb strings.Builder
	sb.WriteString("INSERT INTO m VALUES ")
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 400; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		f := r.Intn(8)
		fmt.Fprintf(&sb, "(%d, %f)", f, float64(f)*0.3)
	}
	mustExec(t, db, sb.String())
	mustExec(t, db, `ANALYZE m`)
	res1 := mustExec(t, db, `PREDICT VALUE OF target FROM m TRAIN ON f VALUES (3)`)
	if strings.Contains(res1.Message, "reused=true") {
		t.Fatal("first predict should train fresh")
	}
	res2 := mustExec(t, db, `PREDICT VALUE OF target FROM m TRAIN ON f VALUES (3)`)
	if !strings.Contains(res2.Message, "reused=true") {
		t.Fatalf("second predict should fine-tune: %s", res2.Message)
	}
	// The model store holds two versions sharing the frozen prefix.
	tblModel, ok := db.ModelStore().FindViewByName("m.target")
	if !ok {
		t.Fatal("model view missing")
	}
	if len(db.ModelStore().Versions(tblModel.MID)) < 2 {
		t.Fatal("fine-tune did not create a version")
	}
}

func TestExecScriptAndErrors(t *testing.T) {
	db := openTest(t)
	res, err := db.ExecScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1), (2);
		SELECT COUNT(*) FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 2 {
		t.Fatalf("script result: %v", res.Rows)
	}
	bad := []string{
		`SELECT * FROM missing`,
		`INSERT INTO missing VALUES (1)`,
		`INSERT INTO t VALUES (1, 2)`,
		`INSERT INTO t (zzz) VALUES (1)`,
		`UPDATE missing SET a = 1`,
		`UPDATE t SET zzz = 1`,
		`DELETE FROM missing`,
		`CREATE INDEX i ON missing (a)`,
		`CREATE INDEX i ON t (zzz)`,
		`DROP TABLE missing`,
		`PREDICT VALUE OF zzz FROM t TRAIN ON *`,
		`PREDICT VALUE OF a FROM missing TRAIN ON *`,
		`EXPLAIN INSERT INTO t VALUES (1)`,
		`CREATE TABLE t (a INT)`, // duplicate
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
	if _, err := db.Exec(`DROP TABLE IF EXISTS missing`); err != nil {
		t.Fatal("IF EXISTS should tolerate missing table")
	}
}

func TestSerializableConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Serializable = true
	db := Open(cfg)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	if res := mustExec(t, db, `SELECT * FROM t`); len(res.Rows) != 1 {
		t.Fatal("serializable path broken")
	}
}
