package neurdb

import (
	"fmt"
	"time"

	"neurdb/internal/catalog"
	"neurdb/internal/index"
	"neurdb/internal/rel"
	"neurdb/internal/storage"
	"neurdb/internal/vfs"
	"neurdb/internal/wal"
)

// openDurable recovers the database from Config.DataDir and installs the
// write-ahead log on the commit path. The sequence is:
//
//  1. Load the newest checkpoint (if any) and rebuild catalog, schemas, index
//     definitions, and heap rows from it. Checkpoint rows install at commit
//     timestamp 1 — every post-recovery snapshot starts at or beyond the
//     restored clock, so they are visible everywhere.
//  2. Replay every retained WAL segment in file order. Redo is idempotent, so
//     records the checkpoint already reflects (possible after a crash during
//     checkpoint truncation) converge harmlessly.
//  3. Fast-forward the commit clock past everything recovered, rebuild the
//     derived state replay does not maintain (free lists, index contents,
//     statistics), and only then open the log for appending — new records go
//     to a fresh segment, never into a possibly-torn tail.
func (db *DB) openDurable() error {
	dir := db.cfg.DataDir
	fs := db.cfg.FS
	if fs == nil {
		fs = vfs.OS
	}
	db.fs = fs
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ck, err := wal.LoadCheckpoint(fs, dir)
	if err != nil {
		return err
	}
	if ck != nil {
		for _, t := range ck.Tables {
			tbl, err := db.cat.Restore(t.ID, t.Name, t.Schema)
			if err != nil {
				return err
			}
			for _, ix := range t.Indexes {
				addIndexDef(tbl, ix.Name, ix.Col, ix.Hash)
			}
			for _, r := range t.Rows {
				tbl.Heap.InstallAt(r.ID, r.Row, 1)
			}
		}
	}
	st, err := wal.ReplaySegments(fs, dir, db.applyRecord)
	if err != nil {
		return err
	}
	clock := st.MaxCTS
	if ck != nil && ck.Clock > clock {
		clock = ck.Clock
	}
	if clock > 0 {
		db.mgr.RestoreClock(clock)
	}
	db.rebuildDerivedState()

	mode, err := wal.ParseSyncMode(db.cfg.WalSync)
	if err != nil {
		return err
	}
	l, err := wal.Open(wal.Options{
		Dir:      dir,
		Mode:     mode,
		Interval: db.cfg.WalSyncInterval,
		NoGroup:  db.cfg.NoGroupCommit,
		Metrics:  db.tracker,
		FS:       fs,
	})
	if err != nil {
		return err
	}
	db.wlog = l
	db.mgr.SetCommitLog(l)
	if db.cfg.CheckpointInterval > 0 || db.cfg.CheckpointWalMB > 0 {
		db.stopCkpt = make(chan struct{})
		db.ckptDone = make(chan struct{})
		go db.checkpointLoop()
	}
	return nil
}

// applyRecord installs one replayed WAL record. Commit operations are
// physiological redo — install the row image at its logged slot, or clear
// the slot — so re-application is idempotent. DDL records tolerate state the
// checkpoint already reflects (create of an existing table, drop of a
// missing one): after a crash during checkpoint truncation both sources can
// describe the same change.
func (db *DB) applyRecord(rec *wal.Record) error {
	switch rec.Kind {
	case wal.RecCommit:
		for _, op := range rec.Ops {
			tbl := db.cat.ByID(op.Table)
			if tbl == nil {
				// The table is dropped later in the log (its drop record was
				// already replayed on a previous pass, or the checkpoint
				// post-dates the drop): its row changes are moot.
				continue
			}
			switch op.Kind {
			case wal.OpInsert, wal.OpUpdate:
				tbl.Heap.InstallAt(op.ID, op.Row, rec.CommitTS)
			case wal.OpDelete:
				tbl.Heap.ClearAt(op.ID)
			}
		}
	case wal.RecCreateTable:
		tbl, err := db.cat.Restore(rec.TableID, rec.Name, rec.Schema)
		if err != nil {
			return err
		}
		// Auto unique indexes are not logged separately; recreate their
		// definitions from the schema flags, as execCreateTable does.
		for i, c := range rec.Schema.Cols {
			if c.Unique {
				addIndexDef(tbl, tbl.Name+"_"+c.Name, i, false)
			}
		}
	case wal.RecDropTable:
		// Ignore "does not exist": the checkpoint may already exclude it.
		_ = db.cat.Drop(rec.Name)
	case wal.RecCreateIndex:
		tbl := db.cat.ByID(rec.TableID)
		if tbl == nil {
			return nil // table dropped later in the log
		}
		addIndexDef(tbl, rec.Name, rec.Col, rec.Hash)
	}
	return nil
}

// addIndexDef registers an empty index definition during recovery if the
// table does not already have one by that name. Contents are rebuilt from
// heap data after replay (rebuildDerivedState), so only the definition
// matters here — and both the checkpoint and a replayed create record may
// describe the same index.
func addIndexDef(tbl *catalog.Table, name string, col int, hash bool) {
	for _, ix := range tbl.Indexes() {
		if ix.Name == name {
			return
		}
	}
	ix := &catalog.Index{Name: name, Col: col}
	if hash {
		ix.Hash = index.NewHashIndex()
	} else {
		ix.BT = index.NewBTree()
	}
	tbl.AddIndex(ix)
}

// rebuildDerivedState reconstructs everything replay does not maintain
// directly: heap free lists (replay never frees slots in place — see
// Heap.ClearAt), secondary index contents, and optimizer statistics. Runs
// single-threaded at boot, before any transaction exists, so every chain
// head is a committed row.
func (db *DB) rebuildDerivedState() {
	for _, tbl := range db.cat.All() {
		tbl.Heap.RebuildFree()
		indexes := tbl.Indexes()
		var rows []rel.Row
		cursor := tbl.Heap.NewCursor()
		for {
			id, head, ok := cursor.Next()
			if !ok {
				break
			}
			row := head.Data
			for _, ix := range indexes {
				ix.Insert(row[ix.Col], id)
			}
			rows = append(rows, row)
		}
		tbl.Stats.Rebuild(rows)
	}
}

// Checkpoint writes a transactionally consistent snapshot of the whole
// database and truncates the WAL to the segments that postdate it. The cut
// runs under the exclusive commit gate: rotate the log (sealing the old
// segment with an fsync), read the commit clock, and list the tables — all
// while no commit is between drawing its timestamp and publishing its
// stamps. Everything committed at or before the cut lands in the snapshot;
// everything after has its record in the new segment. The heap scan itself
// runs outside the gate under manual snapshot visibility, so commits keep
// flowing while the (potentially large) image is built and written.
//
// Concurrent heap mutation during the scan is safe for commits (they only
// prepend versions and stamp timestamps, both handled by the visibility
// walk) but not for physical chain surgery: do not run Heap.Vacuum
// concurrently with Checkpoint.
func (db *DB) Checkpoint() error {
	l := db.wlog
	if l == nil {
		return fmt.Errorf("neurdb: checkpoint requires Config.DataDir")
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()

	l.GateLock()
	sealed, err := l.Rotate()
	if err != nil {
		l.GateUnlock()
		return err
	}
	snap := db.mgr.ClockNow()
	tables := db.cat.All()
	l.GateUnlock()

	ck := &wal.Checkpoint{Seq: sealed, Clock: snap}
	for _, tbl := range tables {
		ct := wal.CkptTable{ID: tbl.ID, Name: tbl.Name, Schema: tbl.Schema}
		for _, ix := range tbl.Indexes() {
			ct.Indexes = append(ct.Indexes, wal.IndexMeta{Name: ix.Name, Col: ix.Col, Hash: ix.Hash != nil})
		}
		cursor := tbl.Heap.NewCursor()
		for {
			id, head, ok := cursor.Next()
			if !ok {
				break
			}
			if row, vis := visibleAt(head, snap); vis {
				ct.Rows = append(ct.Rows, wal.CkptRow{ID: id, Row: row})
			}
		}
		ck.Tables = append(ck.Tables, ct)
	}

	if err := wal.WriteCheckpoint(l.FS(), l.Dir(), ck); err != nil {
		return err
	}
	// Old checkpoints go before old segments: if a crash interrupts the
	// cleanup, recovery sees the new checkpoint plus extra old segments
	// (harmlessly replayed), never a checkpoint whose segments are gone.
	if err := wal.RemoveCheckpointsBefore(l.FS(), l.Dir(), ck.Seq); err != nil {
		return err
	}
	if err := l.RemoveThrough(sealed); err != nil {
		return err
	}
	flushed := db.pool.FlushDirty()
	db.tracker.Count("ckpt.pages", float64(flushed))
	db.tracker.Observe("pool.dirty", float64(db.pool.DirtyPages()))
	db.lastCkptWal.Store(l.Bytes())
	return nil
}

// visibleAt walks a version chain with an explicit snapshot timestamp: the
// first version whose creator committed at or before snap is the snapshot's
// row unless its deleter also committed at or before snap. Unstamped
// versions (creator uncommitted, or committed after the checkpoint cut) are
// skipped — their redo records live in post-cut segments.
func visibleAt(head *storage.Version, snap uint64) (rel.Row, bool) {
	for v := head; v != nil; v = v.Next() {
		bts := v.BeginTS()
		if bts == 0 || bts > snap {
			continue
		}
		if v.EndTS() <= snap {
			return nil, false // deleted within the snapshot; older versions are older still
		}
		return v.Data, true
	}
	return nil, false
}

// checkpointLoop is the background checkpointer: it fires on the configured
// interval and/or whenever the WAL has grown CheckpointWalMB since the last
// checkpoint, and skips entirely while no new WAL has been written.
func (db *DB) checkpointLoop() {
	defer close(db.ckptDone)
	iv := db.cfg.CheckpointInterval
	poll := iv
	if poll <= 0 || poll > time.Second {
		poll = time.Second // size-trigger polling granularity
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	var last time.Time
	for {
		select {
		case <-db.stopCkpt:
			return
		case <-t.C:
			if db.wlog.Bytes() == db.lastCkptWal.Load() {
				continue // nothing new to bound; an empty checkpoint helps no one
			}
			due := iv > 0 && time.Since(last) >= iv
			grown := db.cfg.CheckpointWalMB > 0 &&
				db.wlog.Bytes()-db.lastCkptWal.Load() >= uint64(db.cfg.CheckpointWalMB)<<20
			if !due && !grown {
				continue
			}
			if err := db.Checkpoint(); err != nil {
				db.tracker.Count("ckpt.errors", 1)
			}
			last = time.Now()
		}
	}
}

// Close shuts the instance down cleanly: the background checkpointer stops,
// the implicit session's open transaction (if any) rolls back, and the WAL
// is flushed, fsynced, and closed. In-memory instances (no DataDir) close
// trivially. Close is idempotent.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	if db.stopCkpt != nil {
		close(db.stopCkpt)
		<-db.ckptDone
	}
	var sessErr error
	if db.session != nil {
		sessErr = db.session.Close()
	}
	if db.wlog != nil {
		if err := db.wlog.Close(); err != nil {
			return err
		}
	}
	return sessErr
}
