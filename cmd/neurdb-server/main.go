// neurdb-server serves a NeurDB instance over the binary wire protocol
// (docs/PROTOCOL.md): length-prefixed frames carrying Startup, simple Query,
// and the extended Parse/Bind/Execute sequence against server-side prepared
// statements, so remote clients share the DB-wide plan cache. SELECT
// results stream one executor batch per DataBatch frame, flushed at every
// batch boundary.
//
// SIGTERM/SIGINT drain gracefully: the listener closes, in-flight
// connections get -grace to finish, then stragglers are severed.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neurdb"
	"neurdb/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	maxFrame := flag.Int("max-frame", 0, "max frame payload bytes (0 = 16 MiB default)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown drain window")
	workers := flag.Int("workers", 0, "intra-query parallelism cap (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := neurdb.DefaultConfig()
	cfg.Workers = *workers
	db := neurdb.Open(cfg)

	srv := server.New(db, server.Config{MaxFrame: *maxFrame})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("neurdb-server listening on %s (wire protocol 1.0)", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case sig := <-sigs:
		log.Printf("received %s, draining connections (up to %s)", sig, *grace)
		srv.Shutdown(*grace)
		<-done
		log.Printf("neurdb-server stopped")
	}
}
