// neurdb-server serves a NeurDB instance over a line-based TCP protocol:
// each client sends one SQL statement per line (';' optional) and receives
// result rows terminated by "OK" or an "ERR <message>" line. SELECT results
// are streamed: rows are written (and flushed) one executor batch at a
// time as the cursor produces them, so the server never materializes a full
// result set per connection.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"neurdb"
	"neurdb/internal/executor"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	flag.Parse()

	db := neurdb.Open(neurdb.DefaultConfig())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("neurdb-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go serve(db, conn)
	}
}

func serve(db *neurdb.DB, conn net.Conn) {
	defer conn.Close()
	session := db.NewSession()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for scanner.Scan() {
		sql := strings.TrimSuffix(strings.TrimSpace(scanner.Text()), ";")
		if sql == "" {
			continue
		}
		if err := stream(session, w, sql); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
		} else {
			fmt.Fprintln(w, "OK")
		}
		w.Flush()
	}
}

// stream executes one statement and writes its result incrementally: the
// column header first, then rows flushed at every executor-batch boundary,
// then the statement message. The cursor's read transaction stays open only
// while rows flow.
func stream(session *neurdb.Session, w *bufio.Writer, sql string) error {
	rows, err := session.Query(sql)
	if err != nil {
		return err
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) > 0 {
		fmt.Fprintln(w, strings.Join(cols, "\t"))
	}
	n := 0
	for rows.Next() {
		fmt.Fprintln(w, rows.Row().String())
		n++
		if n%executor.BatchSize == 0 {
			w.Flush() // batch boundary: push rows to the client now
		}
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if msg := rows.Message(); msg != "" {
		fmt.Fprintln(w, msg)
	}
	return nil
}
