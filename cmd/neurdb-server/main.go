// neurdb-server serves a NeurDB instance over a line-based TCP protocol:
// each client sends one SQL statement per line (';' optional) and receives
// result rows terminated by "OK" or an "ERR <message>" line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"neurdb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	flag.Parse()

	db := neurdb.Open(neurdb.DefaultConfig())
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("neurdb-server listening on %s", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go serve(db, conn)
	}
}

func serve(db *neurdb.DB, conn net.Conn) {
	defer conn.Close()
	session := db.NewSession()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for scanner.Scan() {
		sql := strings.TrimSuffix(strings.TrimSpace(scanner.Text()), ";")
		if sql == "" {
			continue
		}
		res, err := session.Exec(sql)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			w.Flush()
			continue
		}
		if len(res.Columns) > 0 {
			fmt.Fprintln(w, strings.Join(res.Columns, "\t"))
		}
		for _, row := range res.Rows {
			fmt.Fprintln(w, row.String())
		}
		if res.Message != "" {
			fmt.Fprintln(w, res.Message)
		}
		fmt.Fprintln(w, "OK")
		w.Flush()
	}
}
