// neurdb-server serves a NeurDB instance over the binary wire protocol
// (docs/PROTOCOL.md): length-prefixed frames carrying Startup, simple Query,
// and the extended Parse/Bind/Execute sequence against server-side prepared
// statements, so remote clients share the DB-wide plan cache. SELECT
// results stream one executor batch per DataBatch frame, flushed at every
// batch boundary.
//
// SIGTERM/SIGINT drain gracefully: the listener closes, in-flight
// connections get -grace to finish, then stragglers are severed.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neurdb"
	"neurdb/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "listen address")
	maxFrame := flag.Int("max-frame", 0, "max frame payload bytes (0 = 16 MiB default)")
	grace := flag.Duration("grace", 10*time.Second, "shutdown drain window")
	workers := flag.Int("workers", 0, "intra-query parallelism cap (0 = GOMAXPROCS)")
	dataDir := flag.String("data", "", "data directory for WAL + checkpoints (empty = in-memory)")
	walSync := flag.String("wal-sync", "commit", "WAL sync mode: commit|interval|off")
	walSyncIv := flag.Duration("wal-sync-interval", 2*time.Millisecond, "background fsync period for -wal-sync=interval")
	ckptIv := flag.Duration("ckpt", time.Minute, "background checkpoint interval (0 = disabled)")
	ckptWalMB := flag.Int("ckpt-wal-mb", 64, "checkpoint when the WAL grows this many MiB (0 = no size trigger)")
	maxConns := flag.Int("max-conns", 0, "max concurrent connections; further clients get a typed TOO_MANY_CONNS refusal (0 = unlimited)")
	stmtTimeout := flag.Duration("stmt-timeout", 0, "per-statement execution bound, overridable per session via SET statement_timeout (0 = disabled)")
	idleTimeout := flag.Duration("idle-timeout", 0, "sever connections idle longer than this between commands (0 = disabled)")
	flag.Parse()

	cfg := neurdb.DefaultConfig()
	cfg.Workers = *workers
	cfg.DataDir = *dataDir
	cfg.WalSync = *walSync
	cfg.WalSyncInterval = *walSyncIv
	cfg.CheckpointInterval = *ckptIv
	cfg.CheckpointWalMB = *ckptWalMB
	cfg.StatementTimeout = *stmtTimeout
	db, err := neurdb.OpenDB(cfg)
	if err != nil {
		log.Fatalf("neurdb-server: recovery failed: %v", err)
	}

	srv := server.New(db, server.Config{
		MaxFrame:    *maxFrame,
		MaxConns:    *maxConns,
		IdleTimeout: *idleTimeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		log.Printf("neurdb-server durable in %s (wal-sync=%s)", *dataDir, *walSync)
	}
	log.Printf("neurdb-server listening on %s (wire protocol 1.0)", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if cerr := db.Close(); cerr != nil {
			log.Printf("close: %v", cerr)
		}
		if err != nil {
			log.Fatal(err)
		}
	case sig := <-sigs:
		log.Printf("received %s, draining connections (up to %s)", sig, *grace)
		srv.Shutdown(*grace)
		<-done
		if err := db.Close(); err != nil {
			log.Printf("close: %v", err)
		}
		log.Printf("neurdb-server stopped")
	}
}
