// neurdb-bench runs the paper's evaluation suite (Table 1, Figures 6-8) and
// prints paper-reported versus measured results.
//
// Usage:
//
//	neurdb-bench                 # all experiments at default (fast) scale
//	neurdb-bench -exp fig7a      # one experiment
//	neurdb-bench -full           # paper-approaching scale (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neurdb/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig6a|fig6b|fig6c|fig7a|fig7b|fig8|all")
	full := flag.Bool("full", false, "use paper-approaching scale (slow)")
	flag.Parse()

	sc := bench.DefaultScale()
	if *full {
		sc = bench.FullScale()
	}

	run := func(name string, f func() (string, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("table1", func() (string, error) {
		rows, err := bench.RunTable1(sc)
		if err != nil {
			return "", err
		}
		return bench.RenderTable1(rows), nil
	})
	run("fig6a", func() (string, error) {
		rows, err := bench.RunFig6a(sc)
		if err != nil {
			return "", err
		}
		return bench.RenderFig6a(rows), nil
	})
	run("fig6b", func() (string, error) {
		points, err := bench.RunFig6b(sc)
		if err != nil {
			return "", err
		}
		return bench.RenderFig6b(points), nil
	})
	run("fig6c", func() (string, error) {
		res, err := bench.RunFig6c(sc)
		if err != nil {
			return "", err
		}
		return bench.RenderFig6c(res), nil
	})
	run("fig7a", func() (string, error) {
		rows, err := bench.RunFig7a(sc)
		if err != nil {
			return "", err
		}
		return bench.RenderFig7a(rows), nil
	})
	run("fig7b", func() (string, error) {
		res, err := bench.RunFig7b(sc)
		if err != nil {
			return "", err
		}
		return bench.RenderFig7b(res), nil
	})
	run("fig8", func() (string, error) {
		res, err := bench.RunFig8(sc)
		if err != nil {
			return "", err
		}
		return bench.RenderFig8(res), nil
	})

	if *exp != "all" && !strings.Contains("table1 fig6a fig6b fig6c fig7a fig7b fig8", *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
