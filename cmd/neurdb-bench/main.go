// neurdb-bench runs the paper's evaluation suite (Table 1, Figures 6-8) and
// prints paper-reported versus measured results.
//
// Usage:
//
//	neurdb-bench                          # all experiments at default (fast) scale
//	neurdb-bench -exp fig7a               # one experiment
//	neurdb-bench -exp fig6a,fig6c         # a comma-separated subset
//	neurdb-bench -full                    # paper-approaching scale (slow)
//	neurdb-bench -json                    # machine-readable results on stdout
//	neurdb-bench -check ci/bench_expectations.json
//	                                      # validate results against committed
//	                                      # expectations; exit 1 on regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"neurdb/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiments (comma-separated): table1|fig6a|fig6b|fig6c|fig7a|fig7b|fig8|prepared|parallel|parallel-dml|wire|durability|all")
	full := flag.Bool("full", false, "use paper-approaching scale (slow)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON object keyed by experiment")
	check := flag.String("check", "", "expectations file: validate results and exit non-zero on regression")
	flag.Parse()

	known := map[string]bool{
		"all": true, "table1": true, "fig6a": true, "fig6b": true,
		"fig6c": true, "fig7a": true, "fig7b": true, "fig8": true,
		"prepared": true, "parallel": true, "parallel-dml": true, "wire": true,
		"durability": true,
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		selected[name] = true
	}

	var exps *bench.Expectations
	if *check != "" {
		var err error
		exps, err = bench.LoadExpectations(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "check: %v\n", err)
			os.Exit(2)
		}
	}

	sc := bench.DefaultScale()
	if *full {
		sc = bench.FullScale()
	}

	results := map[string]any{}
	// run executes one experiment; f returns the rendered table plus the raw
	// result struct for -json consumers and -check validation.
	run := func(name string, f func() (string, any, error)) {
		if !selected["all"] && !selected[name] {
			return
		}
		out, data, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		results[name] = data
		if !*jsonOut {
			fmt.Println(out)
		}
	}

	run("table1", func() (string, any, error) {
		rows, err := bench.RunTable1(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderTable1(rows), rows, nil
	})
	run("fig6a", func() (string, any, error) {
		rows, err := bench.RunFig6a(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig6a(rows), rows, nil
	})
	run("fig6b", func() (string, any, error) {
		points, err := bench.RunFig6b(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig6b(points), points, nil
	})
	run("fig6c", func() (string, any, error) {
		res, err := bench.RunFig6c(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig6c(res), res, nil
	})
	run("fig7a", func() (string, any, error) {
		rows, err := bench.RunFig7a(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig7a(rows), rows, nil
	})
	run("fig7b", func() (string, any, error) {
		res, err := bench.RunFig7b(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig7b(res), res, nil
	})
	run("prepared", func() (string, any, error) {
		res, err := bench.RunPrepared(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderPrepared(res), res, nil
	})
	run("wire", func() (string, any, error) {
		res, err := bench.RunWire(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderWire(res), res, nil
	})
	run("parallel", func() (string, any, error) {
		res, err := bench.RunParallel(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderParallel(res), res, nil
	})
	run("parallel-dml", func() (string, any, error) {
		res, err := bench.RunParallelDML(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderParallelDML(res), res, nil
	})
	run("durability", func() (string, any, error) {
		res, err := bench.RunDurability(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderDurability(res), res, nil
	})
	run("fig8", func() (string, any, error) {
		res, err := bench.RunFig8(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig8(res), res, nil
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
	if exps != nil {
		if violations := exps.Check(results); len(violations) > 0 {
			fmt.Fprintln(os.Stderr, "bench regression check FAILED:")
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bench regression check passed")
	}
}
