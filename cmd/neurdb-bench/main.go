// neurdb-bench runs the paper's evaluation suite (Table 1, Figures 6-8) and
// prints paper-reported versus measured results.
//
// Usage:
//
//	neurdb-bench                 # all experiments at default (fast) scale
//	neurdb-bench -exp fig7a      # one experiment
//	neurdb-bench -full           # paper-approaching scale (slow)
//	neurdb-bench -json           # machine-readable results on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"neurdb/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig6a|fig6b|fig6c|fig7a|fig7b|fig8|all")
	full := flag.Bool("full", false, "use paper-approaching scale (slow)")
	jsonOut := flag.Bool("json", false, "emit results as a JSON object keyed by experiment")
	flag.Parse()

	known := map[string]bool{
		"all": true, "table1": true, "fig6a": true, "fig6b": true,
		"fig6c": true, "fig7a": true, "fig7b": true, "fig8": true,
	}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	sc := bench.DefaultScale()
	if *full {
		sc = bench.FullScale()
	}

	results := map[string]any{}
	// run executes one experiment; f returns the rendered table plus the raw
	// result struct for -json consumers tracking the perf trajectory.
	run := func(name string, f func() (string, any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		out, data, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			results[name] = data
			return
		}
		fmt.Println(out)
	}

	run("table1", func() (string, any, error) {
		rows, err := bench.RunTable1(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderTable1(rows), rows, nil
	})
	run("fig6a", func() (string, any, error) {
		rows, err := bench.RunFig6a(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig6a(rows), rows, nil
	})
	run("fig6b", func() (string, any, error) {
		points, err := bench.RunFig6b(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig6b(points), points, nil
	})
	run("fig6c", func() (string, any, error) {
		res, err := bench.RunFig6c(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig6c(res), res, nil
	})
	run("fig7a", func() (string, any, error) {
		rows, err := bench.RunFig7a(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig7a(rows), rows, nil
	})
	run("fig7b", func() (string, any, error) {
		res, err := bench.RunFig7b(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig7b(res), res, nil
	})
	run("fig8", func() (string, any, error) {
		res, err := bench.RunFig8(sc)
		if err != nil {
			return "", nil, err
		}
		return bench.RenderFig8(res), res, nil
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
}
