package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

func readAll(t *testing.T, src string) []string {
	t.Helper()
	r := bufio.NewReader(strings.NewReader(src))
	var out []string
	for {
		stmt, err := readStatement(r)
		if stmt != "" {
			out = append(out, stmt)
		}
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("readStatement: %v", err)
		}
	}
}

func TestReadStatementSplitting(t *testing.T) {
	got := readAll(t, `
CREATE TABLE t (id INT);
INSERT INTO t VALUES (1); INSERT INTO t
  VALUES (2);
-- a comment; with a semicolon
SELECT 'a;b''c' FROM t;
SELECT id FROM t`)
	want := []string{
		"CREATE TABLE t (id INT)",
		"INSERT INTO t VALUES (1)",
		"INSERT INTO t\n  VALUES (2)",
		"-- a comment; with a semicolon\nSELECT 'a;b''c' FROM t",
		"SELECT id FROM t",
	}
	if len(got) != len(want) {
		t.Fatalf("%d statements, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stmt %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestReadStatementNoSizeCeiling is the regression for the old shell's
// 1 MiB bufio.Scanner cap: a statement far beyond it must come through
// intact.
func TestReadStatementNoSizeCeiling(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("INSERT INTO blob VALUES ")
	for i := 0; i < 40000; i++ { // ~3 MiB on one line
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d,'%s')", i, strings.Repeat("x", 64))
	}
	stmt := sb.String()
	got := readAll(t, stmt+";\nSELECT 1 FROM blob;")
	if len(got) != 2 {
		t.Fatalf("%d statements, want 2", len(got))
	}
	if got[0] != stmt {
		t.Fatalf("large statement corrupted: %d bytes back, want %d", len(got[0]), len(stmt))
	}
}

// TestReadStatementTrailingComment: a script ending in a comment (or a
// comment-only chunk) yields no statement instead of feeding comment text
// to the engine.
func TestReadStatementTrailingComment(t *testing.T) {
	got := readAll(t, "SELECT 1 FROM t;\n-- trailing comment\n")
	if len(got) != 1 || got[0] != "SELECT 1 FROM t" {
		t.Fatalf("got %q", got)
	}
	if got := readAll(t, "-- only a comment\n  \n"); len(got) != 0 {
		t.Fatalf("comment-only input produced statements: %q", got)
	}
	// A comment-only piece terminated by ';' is also skipped.
	got = readAll(t, "-- c\n; SELECT 2 FROM t;")
	if len(got) != 1 || got[0] != "SELECT 2 FROM t" {
		t.Fatalf("got %q", got)
	}
}

func TestReadStatementBlockComment(t *testing.T) {
	got := readAll(t, "SELECT id /* c; omment */ FROM t;\n/* only; comment */\nSELECT 2 FROM t;")
	// The ';' inside each block comment must not split; a leading comment
	// stays attached to its statement (the engine lexer skips it).
	want := []string{"SELECT id /* c; omment */ FROM t", "/* only; comment */\nSELECT 2 FROM t"}
	if len(got) != len(want) {
		t.Fatalf("%d statements, want %d: %q", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stmt %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReadStatementMetaCommand(t *testing.T) {
	got := readAll(t, "  \\q\nSELECT 1 FROM t;")
	if len(got) != 2 || got[0] != `\q` {
		t.Fatalf("got %q", got)
	}
}

func TestReadStatementQuotedBackslash(t *testing.T) {
	// A backslash inside a statement is not a meta command.
	got := readAll(t, `SELECT 'a\q' FROM t;`)
	if len(got) != 1 || got[0] != `SELECT 'a\q' FROM t` {
		t.Fatalf("got %q", got)
	}
}
