// neurdb-cli is a SQL shell for NeurDB. By default it connects to a
// neurdb-server over the binary wire protocol and executes every statement
// as a server-side prepared statement (Parse/Bind/Execute), so repeated
// statements hit the server's plan cache and SELECTs stream one batch at a
// time. With -embedded it runs against an in-process engine instead.
//
// Statements are read with a streaming splitter that has no per-line or
// per-statement size ceiling (the old line-based shell silently stopped at
// 1 MiB): scripts with multi-megabyte INSERT statements work both from
// stdin and via -f.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"neurdb"
	"neurdb/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "server address")
	embedded := flag.Bool("embedded", false, "run an in-process engine instead of connecting")
	script := flag.String("f", "", "execute statements from a script file and exit")
	fetch := flag.Int("fetch", 0, "rows per fetch chunk for streamed SELECTs (0 = driver default)")
	maxFrame := flag.Int("max-frame", 0, "max incoming frame payload bytes (0 = 16 MiB default)")
	flag.Parse()

	var be backend
	if *embedded {
		db := neurdb.Open(neurdb.DefaultConfig())
		be = &embedBackend{session: db.NewSession()}
	} else {
		conn, err := client.ConnectOptions(*addr, client.Options{FetchSize: *fetch, MaxFrame: *maxFrame})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer conn.Close()
		be = &netBackend{conn: conn}
	}

	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		if !runScript(be, f, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	if !stdinIsTerminal() {
		// Piped input is a script: stream it with no size ceiling.
		if !runScript(be, os.Stdin, os.Stdout) {
			os.Exit(1)
		}
		return
	}
	if *embedded {
		fmt.Println("NeurDB shell (embedded) — end statements with ';' (quit with \\q)")
	} else {
		fmt.Printf("NeurDB shell — connected to %s (quit with \\q)\n", *addr)
	}
	repl(be)
}

// repl is the interactive loop: lines accumulate until one carries ';',
// then the buffer is split and executed. Bare "exit"/"quit"/"\q" on their
// own line leave immediately, even mid-statement.
func repl(be backend) {
	in := bufio.NewReader(os.Stdin)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("neurdb> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for {
		line, err := in.ReadString('\n')
		trimmed := strings.ToLower(strings.TrimSpace(line))
		if trimmed == `\q` || trimmed == "exit" || trimmed == "quit" {
			return
		}
		buf.WriteString(line)
		if !strings.Contains(line, ";") && err == nil {
			prompt()
			continue
		}
		// Execute the complete (';'-terminated) statements in the buffer;
		// an unterminated tail — e.g. a ';' inside a still-open string
		// literal tripped the Contains check — stays buffered for the
		// next line instead of running early.
		chunk := bufio.NewReader(strings.NewReader(buf.String()))
		buf.Reset()
		for {
			stmt, rerr := readStatement(chunk)
			if errors.Is(rerr, io.EOF) && stmt != "" && err == nil {
				buf.WriteString(stmt)
				buf.WriteByte('\n')
				break
			}
			if stmt != "" && !strings.HasPrefix(stmt, `\`) {
				if eerr := be.run(stmt, os.Stdout); eerr != nil {
					fmt.Println("error:", eerr)
				}
			}
			if rerr != nil {
				break
			}
		}
		if err != nil {
			return // EOF on stdin
		}
		prompt()
	}
}

// runScript executes statements from r, stopping at the first error.
func runScript(be backend, r io.Reader, out io.Writer) bool {
	in := bufio.NewReader(r)
	for {
		stmt, err := readStatement(in)
		if stmt != "" && !strings.HasPrefix(stmt, `\`) {
			if rerr := be.run(stmt, out); rerr != nil {
				fmt.Fprintln(out, "error:", rerr)
				return false
			}
		}
		if err != nil {
			return true // EOF
		}
	}
}

// readStatement streams the next semicolon-terminated statement from r with
// no size ceiling, respecting single-quoted string literals (with doubled
// quote escapes), `--` line comments and `/* */` block comments — the same
// lexical classes the engine lexer skips. A backslash command at statement
// start ("\q") is returned as-is. A chunk holding only comments/whitespace
// comes back as the empty statement (callers skip it), so a script may end
// with a trailing comment. io.EOF is returned alongside a final
// unterminated statement, or with an empty statement at end of input.
func readStatement(r *bufio.Reader) (string, error) {
	var sb strings.Builder
	inStr, inComment, inBlock, started := false, false, false, false
	hasContent := false // any byte outside comments and whitespace
	finish := func(err error) (string, error) {
		if !hasContent {
			return "", err
		}
		return strings.TrimSpace(sb.String()), err
	}
	for {
		ch, err := r.ReadByte()
		if err != nil {
			return finish(io.EOF)
		}
		if !started {
			switch ch {
			case ' ', '\t', '\n', '\r', ';':
				continue
			case '\\':
				line, err := r.ReadString('\n')
				if err != nil && !errors.Is(err, io.EOF) {
					return "", err
				}
				return `\` + strings.TrimSpace(line), nil
			}
			started = true
		}
		switch {
		case inComment:
			sb.WriteByte(ch)
			if ch == '\n' {
				inComment = false
			}
		case inBlock:
			sb.WriteByte(ch)
			if ch == '*' {
				if next, err := r.Peek(1); err == nil && next[0] == '/' {
					r.ReadByte()
					sb.WriteByte('/')
					inBlock = false
				}
			}
		case inStr:
			sb.WriteByte(ch)
			if ch == '\'' {
				inStr = false // a doubled '' toggles off and back on
			}
		case ch == ';':
			return finish(nil)
		default:
			switch {
			case ch == '\'':
				inStr = true
				hasContent = true
			case ch == '-':
				if next, err := r.Peek(1); err == nil && next[0] == '-' {
					inComment = true
				} else {
					hasContent = true
				}
			case ch == '/':
				if next, err := r.Peek(1); err == nil && next[0] == '*' {
					inBlock = true
				} else {
					hasContent = true
				}
			case ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r':
				hasContent = true
			}
			sb.WriteByte(ch)
		}
	}
}

// backend abstracts the two execution paths (wire connection, embedded
// engine) behind one statement runner with identical output formatting.
type backend interface {
	run(sql string, out io.Writer) error
}

// netBackend executes over the wire as a prepared statement, streaming the
// result as the server produces batches.
type netBackend struct{ conn *client.Conn }

func (b *netBackend) run(sql string, out io.Writer) error {
	st, err := b.conn.Prepare(sql)
	if err != nil {
		return err
	}
	defer st.Close()
	rows, err := st.Query()
	if err != nil {
		return err
	}
	defer rows.Close()
	// SELECT columns are known from Describe before any row; statements
	// like EXPLAIN announce theirs in-band with the first batch, so the
	// header prints as soon as it is known.
	headerDone := false
	header := func() {
		if !headerDone {
			if cols := rows.Columns(); len(cols) > 0 {
				fmt.Fprintln(out, strings.Join(cols, " | "))
			}
			headerDone = true
		}
	}
	if len(rows.Columns()) > 0 {
		header()
	}
	for rows.Next() {
		header()
		fmt.Fprintln(out, rows.RowText())
	}
	if err := rows.Err(); err != nil {
		return err
	}
	// A zero-row result may still have announced columns in-band (e.g. a
	// PREDICT matching nothing): print the header the embedded path prints.
	header()
	if tag := rows.Tag(); tag != "" {
		fmt.Fprintln(out, tag)
	}
	return nil
}

// embedBackend executes against an in-process engine through the streaming
// session API.
type embedBackend struct{ session *neurdb.Session }

func (b *embedBackend) run(sql string, out io.Writer) error {
	rows, err := b.session.Query(sql)
	if err != nil {
		return err
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) > 0 {
		fmt.Fprintln(out, strings.Join(cols, " | "))
	}
	for rows.Next() {
		fmt.Fprintln(out, rows.Row().String())
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if msg := rows.Message(); msg != "" {
		fmt.Fprintln(out, msg)
	}
	return nil
}

// stdinIsTerminal reports whether stdin is an interactive terminal.
func stdinIsTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
