// neurdb-cli is an interactive SQL shell over an in-memory NeurDB instance,
// supporting the full dialect including the PREDICT extension.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"neurdb"
)

func main() {
	db := neurdb.Open(neurdb.DefaultConfig())
	fmt.Println("NeurDB shell — end statements with ';' (quit with \\q)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("neurdb> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "\\q" || trimmed == "exit" || trimmed == "quit" {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		sql := buf.String()
		buf.Reset()
		res, err := db.ExecScript(sql)
		if err != nil {
			fmt.Println("error:", err)
			prompt()
			continue
		}
		if res != nil {
			if len(res.Columns) > 0 {
				fmt.Println(strings.Join(res.Columns, " | "))
			}
			for _, row := range res.Rows {
				fmt.Println(row.String())
			}
			if res.Message != "" {
				fmt.Println(res.Message)
			}
		}
		prompt()
	}
}
