// neurdb-cli is an interactive SQL shell over an in-memory NeurDB instance,
// supporting the full dialect including the PREDICT extension. Statements
// run through the streaming Query API, so large SELECTs print as the
// executor produces batches instead of after full materialization.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"neurdb"
	"neurdb/internal/sqlparse"
)

func main() {
	db := neurdb.Open(neurdb.DefaultConfig())
	session := db.NewSession()
	fmt.Println("NeurDB shell — end statements with ';' (quit with \\q)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("neurdb> ")
		} else {
			fmt.Print("   ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "\\q" || trimmed == "exit" || trimmed == "quit" {
			return
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		sql := buf.String()
		buf.Reset()
		stmts, err := sqlparse.SplitScript(sql)
		if err != nil {
			fmt.Println("error:", err)
			prompt()
			continue
		}
		for _, stmt := range stmts {
			if err := run(session, stmt); err != nil {
				fmt.Println("error:", err)
				break
			}
		}
		prompt()
	}
}

// run executes one statement and prints its result as it streams.
func run(session *neurdb.Session, sql string) error {
	rows, err := session.Query(sql)
	if err != nil {
		return err
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) > 0 {
		fmt.Println(strings.Join(cols, " | "))
	}
	for rows.Next() {
		fmt.Println(rows.Row().String())
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if msg := rows.Message(); msg != "" {
		fmt.Println(msg)
	}
	return nil
}
