// Command neurdb-lint runs the neurdb-lint analyzer suite (internal/lint):
// static checks that mechanically enforce the engine's concurrency,
// determinism, and durability invariants.
//
// It runs in two modes:
//
//	neurdb-lint [./...]                     standalone over the module in cwd
//	go vet -vettool=$(which neurdb-lint)    as a vet tool (unitchecker protocol)
//
// The vet mode speaks the protocol "go vet" expects of a -vettool:
// -V=full describes the executable, -flags describes the flags, and a
// single foo.cfg argument names a JSON compilation-unit description to
// analyze. Diagnostics go to stderr as file:line:col: message and the exit
// status is 1 when any are reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"neurdb/internal/lint"
)

// vetConfig mirrors the JSON compilation-unit description "go vet" writes
// for a -vettool (golang.org/x/tools/go/analysis/unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func usage() {
	fmt.Fprintf(os.Stderr, `neurdb-lint enforces neurdb's concurrency, determinism, and durability invariants.

Usage:
  neurdb-lint [-NAME...] [package ...]        standalone (packages default to ./...)
  go vet -vettool=$(which neurdb-lint) ./...  under go vet

Analyzers:
`)
	for _, a := range lint.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	os.Exit(1)
}

// versionFlag implements the -V=full handshake of the vet tool protocol.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("neurdb-lint: ")
	flag.Usage = usage

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Var(versionFlag{}, "V", "print version and exit")
	_ = flag.Bool("json", false, "no effect (accepted for vet compatibility)")
	_ = flag.Int("c", -1, "no effect (accepted for vet compatibility)")

	suite := lint.All()
	selected := make(map[string]*bool, len(suite))
	for _, a := range suite {
		selected[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (and other -NAME flags)")
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	// Honor explicit -NAME analyzer selection the way go vet does: any
	// flag set true narrows the suite to the true set; otherwise flags
	// set false subtract from it.
	setTrue, setFalse := map[string]bool{}, map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		if on, ok := selected[f.Name]; ok {
			if *on {
				setTrue[f.Name] = true
			} else {
				setFalse[f.Name] = true
			}
		}
	})
	var analyzers []*lint.Analyzer
	for _, a := range suite {
		switch {
		case len(setTrue) > 0:
			if setTrue[a.Name] {
				analyzers = append(analyzers, a)
			}
		case setFalse[a.Name]:
		default:
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], analyzers)
		return
	}
	runStandalone(args, analyzers)
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// runVetUnit analyzes one compilation unit described by a go vet .cfg file.
func runVetUnit(configFile string, analyzers []*lint.Analyzer) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", configFile, err)
	}

	// The go command runs the tool over every dependency (stdlib included)
	// to build fact files before the packages under test. neurdb-lint has
	// no facts, but the protocol still requires the output file to exist.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}

	var applicable []*lint.Analyzer
	for _, a := range analyzers {
		if a.AppliesTo(cfg.ImportPath) {
			applicable = append(applicable, a)
		}
	}
	// Fact-only invocations and packages no analyzer is pinned to need no
	// typechecking at all — this keeps `go vet -vettool` fast: only the
	// handful of invariant-bearing packages are analyzed.
	if cfg.VetxOnly || len(applicable) == 0 {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log.Fatal(err)
	}

	diags, err := lint.RunAnalyzers(&lint.Package{Fset: fset, Files: files, Pkg: tpkg, Info: info}, applicable)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	if len(diags) > 0 {
		printDiags(fset, diags)
		os.Exit(1)
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runStandalone loads the module containing the working directory from
// source and runs the suite over the requested packages (default ./...).
func runStandalone(args []string, analyzers []*lint.Analyzer) {
	root, err := findModuleRoot()
	if err != nil {
		log.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		log.Fatal(err)
	}

	var paths []string
	wantAll := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "all" {
			wantAll = true
		}
	}
	if wantAll {
		paths, err = loader.Walk()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cwd, err := os.Getwd()
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range args {
			paths = append(paths, resolvePath(loader, root, cwd, a))
		}
	}

	exit := 0
	for _, path := range paths {
		applies := false
		for _, a := range analyzers {
			if a.AppliesTo(path) {
				applies = true
				break
			}
		}
		if !applies {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		if len(diags) > 0 {
			printDiags(loader.Fset(), diags)
			exit = 1
		}
	}
	os.Exit(exit)
}

// resolvePath turns a ./relative package argument into a module import path.
func resolvePath(loader *lint.Loader, root, cwd, arg string) string {
	if !strings.HasPrefix(arg, ".") {
		return arg
	}
	abs := filepath.Join(cwd, arg)
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		log.Fatalf("package %s is outside module %s", arg, loader.Module)
	}
	if rel == "." {
		return loader.Module
	}
	return loader.Module + "/" + filepath.ToSlash(rel)
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

func printDiags(fset *token.FileSet, diags []lint.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
