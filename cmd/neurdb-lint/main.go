// Command neurdb-lint runs the neurdb-lint analyzer suite (internal/lint):
// static checks that mechanically enforce the engine's concurrency,
// determinism, and durability invariants.
//
// It runs in two modes:
//
//	neurdb-lint [./...]                     standalone over the module in cwd
//	go vet -vettool=$(which neurdb-lint)    as a vet tool (unitchecker protocol)
//
// The vet mode speaks the protocol "go vet" expects of a -vettool:
// -V=full describes the executable, -flags describes the flags, and a
// single foo.cfg argument names a JSON compilation-unit description to
// analyze. Diagnostics go to stderr as file:line:col: message and the exit
// status is 1 when any are reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"neurdb/internal/lint"
)

// vetConfig mirrors the JSON compilation-unit description "go vet" writes
// for a -vettool (golang.org/x/tools/go/analysis/unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// moduleName scopes fact generation under the vet protocol: only units of
// this module (which both the real tree and the lint fixture modules are
// named after) carry neurdb facts; stdlib units get an empty vetx file and
// are never typechecked.
const moduleName = "neurdb"

func usage() {
	fmt.Fprintf(os.Stderr, `neurdb-lint enforces neurdb's concurrency, determinism, and durability invariants.

Usage:
  neurdb-lint [-NAME...] [-json] [package ...]  standalone (packages default to ./...)
  neurdb-lint -suppressions [package ...]       audit every lint:ignore directive
  go vet -vettool=$(which neurdb-lint) ./...    under go vet

Analyzers:
`)
	for _, a := range lint.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	os.Exit(1)
}

// versionFlag implements the -V=full handshake of the vet tool protocol.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("neurdb-lint: ")
	flag.Usage = usage

	printflags := flag.Bool("flags", false, "print analyzer flags in JSON")
	flag.Var(versionFlag{}, "V", "print version and exit")
	jsonOut := flag.Bool("json", false, "standalone: print diagnostics as JSON on stdout")
	suppressions := flag.Bool("suppressions", false, "audit lint:ignore directives instead of running analyzers")
	_ = flag.Int("c", -1, "no effect (accepted for vet compatibility)")

	suite := lint.All()
	selected := make(map[string]*bool, len(suite))
	for _, a := range suite {
		selected[a.Name] = flag.Bool(a.Name, false, "enable only the "+a.Name+" analyzer (and other -NAME flags)")
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}

	// Honor explicit -NAME analyzer selection the way go vet does: any
	// flag set true narrows the suite to the true set; otherwise flags
	// set false subtract from it.
	setTrue, setFalse := map[string]bool{}, map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		if on, ok := selected[f.Name]; ok {
			if *on {
				setTrue[f.Name] = true
			} else {
				setFalse[f.Name] = true
			}
		}
	})
	var analyzers []*lint.Analyzer
	for _, a := range suite {
		switch {
		case len(setTrue) > 0:
			if setTrue[a.Name] {
				analyzers = append(analyzers, a)
			}
		case setFalse[a.Name]:
		default:
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(args[0], analyzers)
		return
	}
	if *suppressions {
		runSuppressionAudit(suite)
		return
	}
	runStandalone(args, analyzers, *jsonOut)
}

func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// runVetUnit analyzes one compilation unit described by a go vet .cfg file.
func runVetUnit(configFile string, analyzers []*lint.Analyzer) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", configFile, err)
	}

	// The go command runs the tool over every dependency (stdlib included)
	// before the packages under test, threading fact files through
	// PackageVetx/VetxOutput. The protocol requires the output file to
	// exist even for units that carry no facts.
	writeVetx := func(facts lint.PackageFacts) {
		if cfg.VetxOutput == "" {
			return
		}
		var data []byte
		if len(facts) > 0 {
			data = facts.Encode()
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			log.Fatal(err)
		}
	}

	// Only module units are analyzed: stdlib and synthesized test-main
	// units (.test) have no neurdb invariants and no neurdb facts, and
	// skipping their typechecking keeps `go vet -vettool` fast. Module
	// units are always analyzed in full — even under VetxOnly, and even
	// when no analyzer is pinned to them — because the fact-generating
	// passes (summaries, exhaustive, atomicmix) must see every in-module
	// package for downstream importers.
	unitPath := unitImportPath(cfg)
	if !inModuleUnit(unitPath) {
		writeVetx(nil)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(nil)
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not an import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Typecheck under the unit's clean import path (the test variant of a
	// package arrives as "path [path.test]"), so package pinning and fact
	// keys see the real path.
	tpkg, err := tc.Check(unitPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(nil)
			return
		}
		log.Fatal(err)
	}

	// Dependencies analyzed before us left their facts in vetx files; the
	// runner resolves cross-package fact imports from this preloaded store
	// (LoadDep stays nil — the go command already scheduled deps first).
	runner := lint.NewRunner(analyzers)
	for dep, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // degraded precision, never a failure
		}
		runner.SetFacts(dep, lint.DecodeFacts(data))
	}
	diags, facts, err := runner.Run(&lint.Package{Fset: fset, Files: files, Pkg: tpkg, Info: info})
	if err != nil {
		log.Fatal(err)
	}
	writeVetx(facts)
	if len(diags) > 0 && !cfg.VetxOnly {
		printDiags(os.Stderr, fset, diags)
		os.Exit(1)
	}
}

// unitImportPath strips the test-variant suffix from a vet unit's import
// path: "neurdb/internal/txn [neurdb/internal/txn.test]" analyzes as
// "neurdb/internal/txn".
func unitImportPath(cfg *vetConfig) string {
	p := cfg.ImportPath
	if i := strings.Index(p, " ["); i >= 0 {
		p = p[:i]
	}
	return p
}

// inModuleUnit reports whether a vet unit belongs to the neurdb module:
// the module path, its subtree, or an external test package of either.
// Synthesized test mains (".test") are excluded.
func inModuleUnit(path string) bool {
	if strings.HasSuffix(path, ".test") {
		return false
	}
	return path == moduleName ||
		path == moduleName+"_test" ||
		strings.HasPrefix(path, moduleName+"/")
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runStandalone loads the module containing the working directory from
// source and runs the suite over the requested packages (default ./...).
func runStandalone(args []string, analyzers []*lint.Analyzer, jsonOut bool) {
	_, loader, paths := resolveTargets(args)

	// One runner across all packages: facts generated while analyzing one
	// package (or lazily, for a dependency outside the requested set) feed
	// every later package's interprocedural analyzers.
	runner := lint.NewRunner(analyzers)
	runner.Module = loader.Module
	runner.LoadDep = loader.Load

	var all []lint.Diagnostic
	for _, path := range paths {
		applies := false
		for _, a := range analyzers {
			if a.AppliesTo(path) || a.Facts {
				applies = true
				break
			}
		}
		if !applies {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			log.Fatal(err)
		}
		diags, _, err := runner.Run(pkg)
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, diags...)
	}

	if jsonOut {
		printJSON(loader.Fset(), all)
	} else {
		printDiags(os.Stderr, loader.Fset(), all)
		printSummary(os.Stderr, all)
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// resolveTargets maps the command line to module import paths.
func resolveTargets(args []string) (string, *lint.Loader, []string) {
	root, err := findModuleRoot()
	if err != nil {
		log.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		log.Fatal(err)
	}
	var paths []string
	wantAll := len(args) == 0
	for _, a := range args {
		if a == "./..." || a == "all" {
			wantAll = true
		}
	}
	if wantAll {
		paths, err = loader.Walk()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cwd, err := os.Getwd()
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range args {
			paths = append(paths, resolvePath(loader, root, cwd, a))
		}
	}
	return root, loader, paths
}

// printSummary appends a per-analyzer finding count so a long run ends with
// the shape of the damage, not just its tail.
func printSummary(w io.Writer, diags []lint.Diagnostic) {
	if len(diags) == 0 {
		return
	}
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%d finding(s):\n", len(diags))
	for _, n := range names {
		fmt.Fprintf(w, "  %-12s %d\n", n, counts[n])
	}
}

// jsonDiag is the -json wire form of one diagnostic (the CI lint job
// uploads the array as a build artifact).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(fset *token.FileSet, diags []lint.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, jsonDiag{pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message})
	}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// runSuppressionAudit lists every `//lint:ignore` directive in the module —
// test files included — and fails on directives that name an unknown
// analyzer or carry no rationale. A suppression is a signed waiver of an
// invariant; an unsigned one is a finding.
func runSuppressionAudit(suite []*lint.Analyzer) {
	root, err := findModuleRoot()
	if err != nil {
		log.Fatal(err)
	}
	known := map[string]bool{"all": true}
	for _, a := range suite {
		known[a.Name] = true
	}

	type suppression struct {
		pos      token.Position
		analyzer string
		reason   string
		bad      string // non-empty: why this directive fails the audit
	}
	var found []suppression
	fset := token.NewFileSet()
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:ignore")
				if !ok {
					continue
				}
				s := suppression{pos: fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					s.bad = "missing analyzer name and rationale"
				case !known[fields[0]]:
					s.analyzer = fields[0]
					s.bad = "unknown analyzer"
				case len(fields) < 2:
					s.analyzer = fields[0]
					s.bad = "missing rationale"
				default:
					s.analyzer = fields[0]
					s.reason = strings.Join(fields[1:], " ")
				}
				found = append(found, s)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	exit := 0
	for _, s := range found {
		if s.bad != "" {
			fmt.Fprintf(os.Stderr, "%s: BAD (%s): lint:ignore %s\n", s.pos, s.bad, s.analyzer)
			exit = 1
		} else {
			fmt.Fprintf(os.Stdout, "%s: %s: %s\n", s.pos, s.analyzer, s.reason)
		}
	}
	fmt.Fprintf(os.Stderr, "%d suppression(s) audited\n", len(found))
	os.Exit(exit)
}

// resolvePath turns a ./relative package argument into a module import path.
func resolvePath(loader *lint.Loader, root, cwd, arg string) string {
	if !strings.HasPrefix(arg, ".") {
		return arg
	}
	abs := filepath.Join(cwd, arg)
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		log.Fatalf("package %s is outside module %s", arg, loader.Module)
	}
	if rel == "." {
		return loader.Module
	}
	return loader.Module + "/" + filepath.ToSlash(rel)
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

func printDiags(w io.Writer, fset *token.FileSet, diags []lint.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
