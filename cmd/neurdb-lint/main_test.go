package main

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestVettoolSmoke builds the neurdb-lint binary and runs it under the real
// `go vet -vettool` driver over the known-bad fixture module, asserting that
// the diagnostic set matches the fixture's `// want analyzer:"regexp"`
// annotations exactly — the same expectations the in-process analyzer tests
// check, now proven through the vet unitchecker protocol (-V=full, -flags,
// .cfg units, vetx fact files).
func TestVettoolSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "neurdb-lint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building neurdb-lint: %v\n%s", err, out)
	}

	badmod, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = badmod
	var stderr bytes.Buffer
	vet.Stderr = &stderr
	err = vet.Run()
	if err == nil {
		t.Fatalf("go vet succeeded over the known-bad fixture module; stderr:\n%s", stderr.String())
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("go vet did not run: %v\n%s", err, stderr.String())
	}

	type diag struct {
		file, analyzer, message string
		line                    int
	}
	var got []diag
	diagRe := regexp.MustCompile(`^(.*\.go):(\d+):\d+: ([a-z]+): (.*)$`)
	sc := bufio.NewScanner(&stderr)
	for sc.Scan() {
		line := sc.Text()
		if m := diagRe.FindStringSubmatch(line); m != nil {
			n := 0
			for _, c := range m[2] {
				n = n*10 + int(c-'0')
			}
			got = append(got, diag{file: filepath.Base(m[1]), analyzer: m[3], message: m[4], line: n})
		} else if line != "" && !strings.HasPrefix(line, "#") {
			t.Errorf("unparseable go vet output line: %q", line)
		}
	}

	wants := collectWants(t, badmod)
	for _, d := range got {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.file && w.line == d.line && w.analyzer == d.analyzer && w.re.MatchString(d.message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d: %s: %s", d.file, d.line, d.analyzer, d.message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d matching %s:%q", w.file, w.line, w.analyzer, w.re)
		}
	}
}

type want struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

var wantRe = regexp.MustCompile(`([a-z]+):"((?:[^"\\]|\\.)*)"`)

// collectWants scans every fixture .go file for want annotations.
func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	var wants []*want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
				re, err := regexp.Compile(m[2])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[2], err)
				}
				wants = append(wants, &want{file: filepath.Base(path), line: i + 1, analyzer: m[1], re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}
