// neurdb-crashtest is the durability torture harness behind CI's
// crash-recovery job. It boots a real neurdb-server on a data directory,
// drives a concurrent commit storm over the wire while journaling every
// attempt and every server acknowledgment client-side, SIGKILLs the server
// mid-storm, restarts it on the same directory, and then checks the
// durability contract differentially against the journal:
//
//   - no acknowledged commit is lost (acked ⊆ recovered),
//   - no phantom appears (recovered ⊆ attempted),
//   - each writer's recovered rows are a gapless prefix of its serial
//     attempt sequence (at most the one in-flight row beyond the last ack).
//
// Exit codes: 0 = contract holds, 1 = durability violation, 2 = harness
// failure (server would not start, wire errors before the kill, ...).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"neurdb/client"
)

type journal struct {
	mu    sync.Mutex
	tried map[int64]bool
	acked map[int64]bool
	f     *os.File
}

func (j *journal) note(kind string, id int64, ack bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if ack {
		j.acked[id] = true
	} else {
		j.tried[id] = true
	}
	if j.f != nil {
		fmt.Fprintf(j.f, "%s %d\n", kind, id)
	}
}

func (j *journal) counts() (tried, acked int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.tried), len(j.acked)
}

func main() {
	serverBin := flag.String("server", "./neurdb-server", "path to the neurdb-server binary")
	dataDir := flag.String("data", "", "data directory (default: fresh temp dir)")
	writers := flag.Int("writers", 8, "concurrent commit-storm writers")
	ackTarget := flag.Int("acks", 500, "acknowledged commits before the kill")
	timeout := flag.Duration("timeout", 60*time.Second, "overall storm deadline")
	walSync := flag.String("wal-sync", "commit", "server WAL sync mode under test")
	flag.Parse()

	if *dataDir == "" {
		d, err := os.MkdirTemp("", "neurdb-crashtest-")
		if err != nil {
			fatal(2, "mkdtemp: %v", err)
		}
		defer os.RemoveAll(d)
		*dataDir = d
	}
	addr := freeAddr()
	j := &journal{tried: map[int64]bool{}, acked: map[int64]bool{}}
	if f, err := os.Create(filepath.Join(*dataDir, "client-journal.txt")); err == nil {
		j.f = f
		defer f.Close()
	}

	// Phase 1: boot the victim and run the storm.
	srv := startServer(*serverBin, addr, *dataDir, *walSync)
	setup, err := client.Connect(addr)
	if err != nil {
		fatal(2, "connect: %v", err)
	}
	if _, err := setup.Exec(`CREATE TABLE storm (id INT PRIMARY KEY, payload TEXT)`); err != nil {
		fatal(2, "create table: %v", err)
	}
	setup.Close()

	var wg sync.WaitGroup
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Connect(addr)
			if err != nil {
				return
			}
			defer c.Close()
			stmt, err := c.Prepare(`INSERT INTO storm VALUES (?, ?)`)
			if err != nil {
				return
			}
			payload := strings.Repeat("x", 64)
			for seq := 0; ; seq++ {
				id := int64(w)*1_000_000 + int64(seq)
				j.note("try", id, false)
				if _, err := stmt.Exec(id, payload); err != nil {
					return // the kill severed us mid-commit; exactly what we want
				}
				j.note("ack", id, true)
			}
		}(w)
	}

	deadline := time.Now().Add(*timeout)
	for {
		if _, acks := j.counts(); acks >= *ackTarget {
			break
		}
		if time.Now().After(deadline) {
			srv.Process.Kill()
			fatal(2, "storm never reached %d acks before deadline", *ackTarget)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 2: kill -9 mid-storm.
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		fatal(2, "SIGKILL: %v", err)
	}
	srv.Wait()
	wg.Wait()
	tried, acked := j.counts()
	fmt.Printf("crashtest: killed server after %d acked / %d attempted commits\n", acked, tried)

	// Phase 3: restart on the same directory and verify recovery.
	addr2 := freeAddr()
	srv2 := startServer(*serverBin, addr2, *dataDir, *walSync)
	defer func() {
		srv2.Process.Signal(syscall.SIGTERM)
		srv2.Wait()
	}()
	c, err := client.Connect(addr2)
	if err != nil {
		fatal(2, "connect after restart: %v", err)
	}
	defer c.Close()
	rows, err := c.Query(`SELECT id FROM storm`)
	if err != nil {
		fatal(1, "query recovered table: %v", err)
	}
	recovered := map[int64]bool{}
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			fatal(2, "scan: %v", err)
		}
		if recovered[id] {
			fatal(1, "row %d recovered twice", id)
		}
		recovered[id] = true
	}
	if err := rows.Err(); err != nil {
		fatal(2, "rows: %v", err)
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	for id := range j.acked {
		if !recovered[id] {
			fatal(1, "DURABILITY VIOLATION: acked commit %d lost (%d acked, %d recovered)",
				id, len(j.acked), len(recovered))
		}
	}
	for id := range recovered {
		if !j.tried[id] {
			fatal(1, "DURABILITY VIOLATION: recovered row %d was never attempted", id)
		}
	}
	maxSeq := map[int64]int64{}
	for id := range recovered {
		if w, seq := id/1_000_000, id%1_000_000; seq > maxSeq[w] {
			maxSeq[w] = seq
		}
	}
	for w, m := range maxSeq {
		for seq := int64(0); seq <= m; seq++ {
			if !recovered[w*1_000_000+seq] {
				fatal(1, "DURABILITY VIOLATION: writer %d row %d missing below recovered max %d", w, seq, m)
			}
		}
	}
	fmt.Printf("crashtest: OK — %d attempted, %d acked, %d recovered, no acked commit lost\n",
		len(j.tried), len(j.acked), len(recovered))
}

// startServer spawns the server and waits for its listener (or its early
// death, reported with captured output).
func startServer(bin, addr, dataDir, walSync string) *exec.Cmd {
	cmd := exec.Command(bin, "-addr", addr, "-data", dataDir, "-wal-sync", walSync, "-grace", "2s")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		fatal(2, "start %s: %v", bin, err)
	}
	exited := make(chan struct{})
	go func() { cmd.Wait(); close(exited) }()
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		select {
		case <-exited:
			fatal(2, "server exited before listening:\n%s", out.String())
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			fatal(2, "server never listened on %s:\n%s", addr, out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// freeAddr reserves a loopback port by binding and releasing it.
func freeAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(2, "reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashtest: "+format+"\n", args...)
	os.Exit(code)
}
