package neurdb

import (
	"fmt"
	"sync/atomic"

	"neurdb/internal/plan"
	"neurdb/internal/rel"
	"neurdb/internal/sqlparse"
)

// Stmt is a prepared statement: lexed, parsed, and — for SELECT — bound and
// planned once, then executed many times with per-call parameter values
// ('?' or '$n' placeholders). SELECT plans live in the DB-wide plan cache,
// keyed by statement text and optimizer mode and invalidated by catalog
// version (DDL and ANALYZE bump it), so re-execution pays only parameter
// binding and execution. A Stmt is safe for concurrent use.
type Stmt struct {
	s       *Session
	sql     string
	ast     sqlparse.Stmt
	sel     *sqlparse.Select // non-nil when the statement is a SELECT
	nParams int
	closed  atomic.Bool
	// entry is the statement-local view of the cached plan, revalidated on
	// every execution against the catalog version and optimizer mode
	// without taking the shared cache's lock.
	entry atomic.Pointer[planEntry]
}

// Prepare parses and (for SELECT) plans a statement on the implicit
// session.
func (db *DB) Prepare(sql string) (*Stmt, error) { return db.session.Prepare(sql) }

// Prepare parses and (for SELECT) plans a statement for this session. The
// compiled plan is shared through the DB plan cache, so preparing the same
// text on many sessions plans it once per catalog version.
func (s *Session) Prepare(sql string) (*Stmt, error) {
	ast, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	st := &Stmt{s: s, sql: sql, ast: ast, nParams: sqlparse.ParamCount(ast)}
	if sel, ok := ast.(*sqlparse.Select); ok {
		st.sel = sel
		e, err := s.db.cachedPlan(sql, sel)
		if err != nil {
			return nil, err
		}
		st.entry.Store(e)
	}
	return st, nil
}

// NumParams returns the number of parameters the statement takes.
func (st *Stmt) NumParams() int { return st.nParams }

// IsSelect reports whether the statement streams result rows (a SELECT).
func (st *Stmt) IsSelect() bool { return st.sel != nil }

// ResultSchema returns the typed result schema of a prepared SELECT,
// revalidating the cached plan against the catalog first (DDL can change
// the shape). Non-SELECT statements return nil: their result metadata is
// not known until execution. The wire server's Describe message is backed
// by this.
func (st *Stmt) ResultSchema() (*rel.Schema, error) {
	if st.sel == nil {
		return nil, nil
	}
	e, err := st.plan()
	if err != nil {
		return nil, err
	}
	return e.node.Schema(), nil
}

// Columns returns the result column names of a prepared SELECT (nil for
// non-SELECT statements).
func (st *Stmt) Columns() ([]string, error) {
	if st.sel == nil {
		return nil, nil
	}
	e, err := st.plan()
	if err != nil {
		return nil, err
	}
	return e.columns, nil
}

// Query executes the statement with the given arguments and returns a
// streaming cursor (see Rows). Non-SELECT statements execute eagerly and
// come back as a materialized cursor carrying Message/Affected.
func (st *Stmt) Query(args ...any) (*Rows, error) {
	vals, err := st.bind(args)
	if err != nil {
		return nil, err
	}
	if st.sel != nil {
		e, err := st.plan()
		if err != nil {
			return nil, err
		}
		return st.s.streamPlan(e.node, e.columns, e.hasParams, vals)
	}
	return st.s.queryStmt(st.ast, vals)
}

// plan returns the compiled plan for the SELECT. The fast path revalidates
// the statement-local entry with a lock-free catalog-version and mode
// compare (counting a cache hit), so concurrent prepared executions do not
// serialize on the shared cache's mutex; invalidation falls back to the
// shared cache, which replans as needed.
func (st *Stmt) plan() (*planEntry, error) {
	db := st.s.db
	if e := st.entry.Load(); e != nil && e.catVer == db.cat.Version() && e.mode == db.OptimizerModeNow() {
		db.plans.hits.Add(1)
		return e, nil
	}
	e, err := db.cachedPlan(st.sql, st.sel)
	if err != nil {
		return nil, err
	}
	st.entry.Store(e)
	return e, nil
}

// Exec executes the statement with the given arguments and materializes the
// outcome, draining the cursor for SELECTs.
func (st *Stmt) Exec(args ...any) (*Result, error) {
	if st.sel != nil {
		rows, err := st.Query(args...)
		if err != nil {
			return nil, err
		}
		return rows.drain()
	}
	vals, err := st.bind(args)
	if err != nil {
		return nil, err
	}
	return st.s.execStmt(st.ast, vals)
}

// bind validates the closed flag and converts arguments.
func (st *Stmt) bind(args []any) ([]rel.Value, error) {
	if st.closed.Load() {
		return nil, fmt.Errorf("neurdb: statement is closed")
	}
	return convertArgs(st.nParams, args)
}

// Close marks the statement unusable. The cached plan stays in the shared
// cache for other statements with the same text.
func (st *Stmt) Close() error {
	st.closed.Store(true)
	return nil
}

// cachedPlan returns the compiled plan for a SELECT, planning and caching
// it on miss or when DDL/ANALYZE invalidated the cached entry. Shared-cache
// lookups feed the monitor ("plancache.hit" series); PlanCacheStats counts
// those plus the statements' lock-free local revalidations.
func (db *DB) cachedPlan(sql string, sel *sqlparse.Select) (*planEntry, error) {
	mode := db.OptimizerModeNow()
	ver := db.cat.Version()
	key := planKey(mode, sql)
	if e, ok := db.plans.get(key, ver); ok {
		db.tracker.Observe("plancache.hit", 1)
		return e, nil
	}
	db.tracker.Observe("plancache.hit", 0)
	p, err := db.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	e := &planEntry{
		key:       key,
		mode:      mode,
		node:      p,
		columns:   p.Schema().Names(),
		hasParams: plan.HasParams(p),
		catVer:    ver,
	}
	db.plans.put(e)
	return e, nil
}

// PlanCacheStats returns the cumulative plan-cache hit/miss counters.
func (db *DB) PlanCacheStats() (hits, misses uint64) { return db.plans.stats() }
