package neurdb

// Degradation-path tests: WAL poison turning the instance read-only,
// statement timeouts, and crash-point recovery — all driven deterministically
// through Config.FS with a scripted vfs.FaultFS.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"neurdb/internal/vfs"
)

// faultConfig is a durable config writing through the given FaultFS.
func faultConfig(dir string, ffs *vfs.FaultFS) Config {
	cfg := DefaultConfig()
	cfg.DataDir = dir
	cfg.FS = ffs
	return cfg
}

// TestDegradedReadOnlyAfterFsyncFailure exercises the full degradation
// story: a failed WAL fsync poisons the log; the failing commit reports the
// raw device error; later writes fail fast with ErrReadOnly; established
// read sessions keep working; the db.degraded gauge flips; and Close
// surfaces the original error so the operator learns the tail was not
// durable.
func TestDegradedReadOnlyAfterFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	db, err := OpenDB(faultConfig(dir, ffs))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE kv (id INT PRIMARY KEY, name TEXT)`)
	for i := 0; i < 10; i++ {
		mustExecArgs(t, db, `INSERT INTO kv VALUES (?, ?)`, i, fmt.Sprintf("n%d", i))
	}
	sess := db.NewSession()
	defer sess.Close()

	if db.Degraded() {
		t.Fatal("healthy instance reports degraded")
	}

	// The disk dies under the next commit's fsync.
	ffs.AddFault(vfs.Fault{Op: vfs.OpSync, Path: "wal-"})
	_, err = db.Exec(`INSERT INTO kv VALUES (100, 'doomed')`)
	if !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("failing commit: want the raw fsync error, got %v", err)
	}

	// Every later write fails fast with the typed degradation error —
	// before touching the WAL at all.
	_, err = db.Exec(`INSERT INTO kv VALUES (101, 'rejected')`)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("post-poison write: want ErrReadOnly, got %v", err)
	}
	if _, err := db.Exec(`UPDATE kv SET name = 'x' WHERE id = 1`); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("post-poison update: want ErrReadOnly, got %v", err)
	}
	if _, err := db.Exec(`CREATE TABLE t2 (id INT)`); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("post-poison DDL: want ErrReadOnly, got %v", err)
	}
	if !db.Degraded() {
		t.Fatal("Degraded() = false after WAL poison")
	}
	if got := db.Monitor().Mean("db.degraded"); got != 1 {
		t.Fatalf("db.degraded gauge = %v, want 1", got)
	}

	// Reads — on the established session and fresh ones — keep serving the
	// acked state. (The commit that hit the failed fsync is visible but was
	// never acknowledged; that is the documented group-commit trade: its
	// record precedes any dependent commit in the log, and the instance is
	// read-only from here so nothing new can build on it.)
	for _, q := range []func(string, ...any) (*Result, error){sess.Exec, db.Exec} {
		res, err := q(`SELECT count(*) FROM kv WHERE id < 100`)
		if err != nil {
			t.Fatalf("read while degraded: %v", err)
		}
		if res.Rows[0][0].I != 10 {
			t.Fatalf("read while degraded saw %d acked rows, want 10", res.Rows[0][0].I)
		}
	}

	// Close hands back the original device error, not a swallowed nil.
	if err := db.Close(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("Close() = %v, want the original fsync error", err)
	}

	// Restart-recovers: a reopen on the real filesystem replays the durable
	// prefix and is writable again. Every acked commit must be present; the
	// unacked one may or may not be (its record reached the OS buffer — a
	// real power loss could go either way, and both are correct).
	db2, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()
	ids := queryInts(t, db2, `SELECT id FROM kv WHERE id < 100 ORDER BY id`)
	if len(ids) != 10 {
		t.Fatalf("recovered %d acked rows, want 10 (%v)", len(ids), ids)
	}
	if db2.Degraded() {
		t.Fatal("recovered instance still degraded")
	}
	mustExec(t, db2, `INSERT INTO kv VALUES (200, 'alive')`)
}

// TestCrashPointAckedInRecovered runs an insert storm into a FaultFS with a
// scripted crash-point mid-stream, then recovers on the real filesystem and
// checks the crashtest invariant: every acknowledged insert is present.
func TestCrashPointAckedInRecovered(t *testing.T) {
	for _, crashNth := range []int{5, 12, 30} {
		dir := t.TempDir()
		ffs := vfs.NewFaultFS(nil)
		db, err := OpenDB(faultConfig(dir, ffs))
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, `CREATE TABLE s (id INT PRIMARY KEY, v TEXT)`)
		// Power fails at the crashNth-th WAL write after setup, tearing it
		// after a few bytes; everything mutating after that freezes.
		ffs.AddFault(vfs.Fault{Op: vfs.OpWrite, Path: "wal-", Nth: crashNth, Err: vfs.ErrNoSpace, Short: 5, Crash: true})

		var acked []int
		for i := 0; i < 200; i++ {
			if _, err := db.Exec(`INSERT INTO s VALUES (?, ?)`, i, fmt.Sprintf("v%d", i)); err != nil {
				break
			}
			acked = append(acked, i)
		}
		if !ffs.Crashed() {
			t.Fatalf("crashNth=%d: crash point never fired", crashNth)
		}
		_ = db.Close()

		db2, err := OpenDB(durableConfig(dir))
		if err != nil {
			t.Fatalf("crashNth=%d: recovery: %v", crashNth, err)
		}
		recovered := make(map[int64]bool)
		for _, id := range queryInts(t, db2, `SELECT id FROM s`) {
			recovered[id] = true
		}
		for _, id := range acked {
			if !recovered[int64(id)] {
				t.Fatalf("crashNth=%d: acked insert %d lost (%d acked, %d recovered)",
					crashNth, id, len(acked), len(recovered))
			}
		}
		db2.Close()
	}
}

// TestCheckpointFailureOldStateWins forces checkpoint publication to fail at
// the rename and verifies recovery still sees every commit: the stale
// checkpoint plus the retained WAL segments.
func TestCheckpointFailureOldStateWins(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	db, err := OpenDB(faultConfig(dir, ffs))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE c (id INT PRIMARY KEY)`)
	for i := 0; i < 20; i++ {
		mustExecArgs(t, db, `INSERT INTO c VALUES (?)`, i)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("healthy checkpoint: %v", err)
	}
	for i := 20; i < 40; i++ {
		mustExecArgs(t, db, `INSERT INTO c VALUES (?)`, i)
	}
	ffs.AddFault(vfs.Fault{Op: vfs.OpRename, Path: ".ckpt"})
	if err := db.Checkpoint(); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("checkpoint under rename fault: got %v", err)
	}
	// The failed checkpoint must not have truncated the WAL or clobbered
	// the old image: a post-failure commit and all 40 rows survive reopen.
	mustExec(t, db, `INSERT INTO c VALUES (100)`)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db2, err := OpenDB(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer db2.Close()
	if n := len(queryInts(t, db2, `SELECT id FROM c`)); n != 41 {
		t.Fatalf("recovered %d rows, want 41", n)
	}
}

// TestStatementTimeoutSession checks the per-session override: an
// already-expired deadline fails the cursor at its first batch pull with the
// typed error, and resetting to 0 disables it again.
func TestStatementTimeoutSession(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2), (3)`)

	sess := db.NewSession()
	defer sess.Close()
	sess.SetStatementTimeout(time.Nanosecond)
	rows, err := sess.Query(`SELECT id FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("want ErrStatementTimeout, got %v", err)
	}
	rows.Close()

	// SET statement_timeout = 0 disables the bound even when Config sets one.
	if _, err := sess.Exec(`SET statement_timeout = 0`); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Exec(`SELECT id FROM t`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("timeout not cleared: res=%+v err=%v", res, err)
	}
}

// TestStatementTimeoutSetParsing covers the SET statement_timeout forms:
// bare integers are milliseconds, duration strings work, negatives are
// rejected.
func TestStatementTimeoutSetParsing(t *testing.T) {
	db := Open(DefaultConfig())
	defer db.Close()
	sess := db.NewSession()
	defer sess.Close()
	for _, q := range []string{
		`SET statement_timeout = 250`,
		`SET statement_timeout = '1500ms'`,
		`SET statement_timeout = '2s'`,
		`SET statement_timeout = 0`,
	} {
		if _, err := sess.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if _, err := sess.Exec(`SET statement_timeout = -5`); err == nil {
		t.Fatal("negative statement_timeout accepted")
	}
	if _, err := sess.Exec(`SET statement_timeout = 'bogus'`); err == nil {
		t.Fatal("malformed statement_timeout accepted")
	}
}

// TestStatementTimeoutConfigDefault checks Config.StatementTimeout applies
// to sessions that never call SET.
func TestStatementTimeoutConfigDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StatementTimeout = time.Nanosecond
	db := Open(cfg)
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (id INT PRIMARY KEY)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err != nil {
		// DML is bounded at batch granularity too, but a single-row insert
		// completes before the first deadline check — it must not fail.
		t.Fatalf("insert under tiny timeout: %v", err)
	}
	sess := db.NewSession()
	defer sess.Close()
	rows, err := sess.Query(`SELECT id FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, ErrStatementTimeout) {
		t.Fatalf("config default timeout not applied: %v", err)
	}
	rows.Close()
}
