-- CI build-and-boot smoke script: executed by neurdb-cli against a freshly
-- booted neurdb-server over the wire protocol; stdout is diffed against
-- ci/smoke_golden.txt. Every statement runs as a server-side prepared
-- statement (Parse/Bind/Execute), so this covers DDL, prepared DML and
-- streaming SELECT end to end.
CREATE TABLE review (id INT PRIMARY KEY, brand TEXT, stars INT, score DOUBLE);
CREATE INDEX review_brand ON review (brand);
INSERT INTO review VALUES
  (1,'acme',5,4.5),
  (2,'globex',4,3.9),
  (3,'acme',3,3.1),
  (4,'initech',5,4.9),
  (5,'globex',2,2.2);
UPDATE review SET score = 4.0 WHERE brand = 'globex' AND stars >= 4;
SELECT id, brand, score FROM review WHERE score >= 3.5 ORDER BY id;
SELECT brand, COUNT(*), AVG(score) FROM review GROUP BY brand;
-- a quoted semicolon must not split the statement
SELECT id FROM review WHERE brand = 'no;such;brand';
DELETE FROM review WHERE stars <= 2;
SELECT id, brand FROM review ORDER BY score DESC LIMIT 3;
EXPLAIN SELECT id FROM review WHERE brand = 'acme';
BEGIN;
INSERT INTO review VALUES (6,'hooli',1,1.0);
ROLLBACK;
SELECT id FROM review ORDER BY id;
