// Benchmark harness: one testing.B per table/figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at a reduced
// scale and reports the headline metrics via b.ReportMetric, so
// `go test -bench=.` regenerates every result. `cmd/neurdb-bench` prints
// the full paper-style tables.
package neurdb_test

import (
	"testing"
	"time"

	"neurdb/internal/bench"
)

// benchScale keeps -bench runs quick while preserving shapes.
func benchScale() bench.Scale {
	return bench.Scale{
		BatchSize:        256,
		Fig6aBatches:     16,
		Fig6bBatchCounts: []int{4, 8, 16},
		Fig6cSwitchEvery: 1024,
		Window:           16,

		YCSBRecords:    50_000,
		CCDuration:     250 * time.Millisecond,
		Fig7bPhase:     600 * time.Millisecond,
		Fig7bIntervals: 4,

		PreparedRows:  10_000,
		PreparedIters: 1_000,

		ParallelRows:  60_000,
		ParallelIters: 3,

		StatsScale:    1,
		QORepeats:     2,
		QOTrainPasses: 40,

		DurabilityDuration: 100 * time.Millisecond,
	}
}

// BenchmarkPreparedVsReparse measures prepared re-execution of a point
// SELECT (plan-cache hit path) against parse-per-call Exec.
func BenchmarkPreparedVsReparse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunPrepared(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Speedup, "speedup")
		b.ReportMetric(res.PreparedNsPerOp, "prepared-ns/op")
		b.ReportMetric(res.ReparseNsPerOp, "reparse-ns/op")
	}
}

// BenchmarkParallelScaling measures morsel-driven intra-query scaling
// (1/2/4 workers) through the SQL surface; the 4-worker speedups are the
// headline metrics the bench-multicore CI job gates at paper scale.
func BenchmarkParallelScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunParallel(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ScanAggSpeedup4, "scanagg-speedup4")
		b.ReportMetric(res.JoinSpeedup4, "join-speedup4")
	}
}

// BenchmarkDurability measures the WAL commit path: group commit versus
// fsync-per-commit at 1/8/32 writers, plus the wal-off and interval-sync
// reference points. The 32-writer group-commit speedup is the headline
// metric the bench-gate CI job gates.
func BenchmarkDurability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunDurability(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GroupSpeedup32, "group-speedup32")
		b.ReportMetric(res.IntervalOverhead, "interval-overhead")
		b.ReportMetric(res.FsyncUs, "fsync-us")
	}
}

// BenchmarkTable1Queries executes the two AI-analytics statements of
// Table 1 end to end through the SQL surface.
func BenchmarkTable1Queries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Latency.Seconds()*1000, "E-ms")
		b.ReportMetric(rows[1].Latency.Seconds()*1000, "H-ms")
	}
}

// BenchmarkFig6aEndToEnd reproduces Fig. 6(a): end-to-end latency and
// training throughput, NeurDB vs PostgreSQL+P, Workloads E and H.
func BenchmarkFig6aEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig6a(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TputSpeedup, "E-speedup")
		b.ReportMetric(rows[1].TputSpeedup, "H-speedup")
		b.ReportMetric(rows[0].LatencyReduction*100, "E-lat-red-%")
		b.ReportMetric(rows[1].LatencyReduction*100, "H-lat-red-%")
	}
}

// BenchmarkFig6bDataVolume reproduces Fig. 6(b): latency vs batch count.
func BenchmarkFig6bDataVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig6b(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(float64(last.Baseline.Milliseconds()), "pg+p-ms")
		b.ReportMetric(float64(last.NeurDB.Milliseconds()), "neurdb-ms")
	}
}

// BenchmarkFig6cDrift reproduces Fig. 6(c): loss under cluster drift with
// and without incremental model updates.
func BenchmarkFig6cDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig6c(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPostDriftNoInc, "loss-noinc")
		b.ReportMetric(res.MeanPostDriftInc, "loss-inc")
		b.ReportMetric(float64(res.StorageIncBytes)/float64(res.StorageFullBytes), "storage-ratio")
	}
}

// BenchmarkFig7aLearnedCC reproduces Fig. 7(a): learned CC vs SSI on YCSB.
func BenchmarkFig7aLearnedCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFig7a(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Speedup, "4thr-speedup")
		b.ReportMetric(rows[1].Speedup, "16thr-speedup")
	}
}

// BenchmarkFig7bDrift reproduces Fig. 7(b): adaptation under TPC-C drift,
// NeurDB(CC) vs Polyjuice.
func BenchmarkFig7bDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7b(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.PostDriftRatio, "postdrift-ratio")
	}
}

// BenchmarkFig8QueryOptimizer reproduces Fig. 8: the four optimizers on the
// STATS SPJ queries under drift.
func BenchmarkFig8QueryOptimizer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		severe := res.Levels[2]
		b.ReportMetric(res.AvgMS[severe]["PostgreSQL"], "pg-avg-ms")
		b.ReportMetric(res.AvgMS[severe]["Bao"], "bao-avg-ms")
		b.ReportMetric(res.AvgMS[severe]["Lero"], "lero-avg-ms")
		b.ReportMetric(res.AvgMS[severe]["NeurDB"], "neurdb-avg-ms")
		b.ReportMetric(res.NeurDBReduction*100, "neurdb-red-%")
	}
}
