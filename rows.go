package neurdb

import (
	"fmt"
	"time"

	"neurdb/internal/executor"
	"neurdb/internal/rel"
)

// Rows is a streaming result cursor. A SELECT executed through Query pulls
// rel.Batches from the vectorized executor incrementally — at most one
// batch is materialized at a time — and holds its read transaction open
// until Close (or end of stream), so consumers see the first row before the
// last one is produced. Statements without a streaming shape (DML, DDL,
// EXPLAIN, PREDICT) come back as an already-materialized Rows whose Message
// and Affected carry the statement outcome.
//
// Usage follows database/sql:
//
//	rows, err := db.Query(`SELECT id, score FROM review WHERE stars >= ?`, 3)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var id int64
//		var score float64
//		if err := rows.Scan(&id, &score); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A Rows is not safe for concurrent use.
type Rows struct {
	cols   []string
	schema *rel.Schema // result schema for streamed SELECTs; nil for materialized results

	// Streaming state (SELECT): it pulls batches, done finalizes the read
	// transaction. Both are nil once the stream is finished.
	it    executor.BatchIter
	done  func(error) error
	batch *rel.Batch
	pos   int

	// Materialized state (non-SELECT statements executed through Query).
	static   []rel.Row
	msg      string
	affected int

	// deadline bounds the stream (Config.StatementTimeout / SET
	// statement_timeout): enforced before each batch pull, the same
	// granularity as client-driven Cancel. Zero = no bound.
	deadline time.Time

	cur    rel.Row
	err    error
	closed bool
}

// newStreamingRows opens the iterator and wraps it as a cursor. On error
// the read transaction is finalized before returning.
func newStreamingRows(cols []string, schema *rel.Schema, it executor.BatchIter, done func(error) error) (*Rows, error) {
	if err := it.Open(); err != nil {
		it.Close()
		return nil, done(err)
	}
	// The batch starts empty and grows toward executor.BatchSize on demand:
	// point lookups (the prepared-statement hot path) then pay for one or
	// two rows instead of a full-size batch allocation per execution.
	return &Rows{cols: cols, schema: schema, it: it, done: done, batch: rel.NewBatch(0)}, nil
}

// newStaticRows wraps a materialized result as a cursor.
func newStaticRows(res *Result) *Rows {
	return &Rows{cols: res.Columns, static: res.Rows, msg: res.Message, affected: res.Affected}
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// Schema returns the typed result schema for a streamed SELECT, or nil for
// materialized results (DML, DDL, EXPLAIN, PREDICT), whose column types are
// carried by the values themselves. The wire server uses it to emit
// RowDescription type hints.
func (r *Rows) Schema() *rel.Schema { return r.schema }

// Message returns the statement message for non-streaming statements
// ("INSERT 3", "CREATE TABLE", ...); empty for streamed SELECTs.
func (r *Rows) Message() string { return r.msg }

// Affected returns the affected-row count for DML executed through Query.
func (r *Rows) Affected() int { return r.affected }

// Next advances to the next row, pulling the next batch from the executor
// when the current one is drained. It returns false at end of stream or on
// error (check Err). Reaching end of stream releases the read transaction
// immediately; Close is still required on early exit.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.batch == nil { // materialized result
		if r.pos >= len(r.static) {
			r.cur = nil
			return false
		}
		r.cur = r.static[r.pos]
		r.pos++
		return true
	}
	for {
		if r.pos < r.batch.Len() {
			r.cur = r.batch.Rows[r.pos]
			r.pos++
			return true
		}
		if r.it == nil { // stream already finished
			r.cur = nil
			return false
		}
		if !r.deadline.IsZero() && time.Now().After(r.deadline) {
			r.err = ErrStatementTimeout
			r.finish(r.err)
			r.cur = nil
			return false
		}
		n, err := r.it.NextBatch(r.batch)
		if err != nil {
			r.err = err
			r.finish(err)
			r.cur = nil
			return false
		}
		if n == 0 {
			if ferr := r.finish(nil); ferr != nil && r.err == nil {
				r.err = ferr
			}
			r.cur = nil
			return false
		}
		r.pos = 0
	}
}

// Row returns the current row (valid after Next returned true). The row
// must not be mutated.
func (r *Rows) Row() rel.Row { return r.cur }

// Scan copies the current row into dest, one target per column. Supported
// targets: *int, *int64, *float64, *string, *bool, *rel.Value, *any.
// SQL NULL scans as the target's zero value (nil for *any).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("neurdb: Scan called without a current row")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("neurdb: Scan has %d targets for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if err := assignValue(d, r.cur[i]); err != nil {
			return fmt.Errorf("neurdb: Scan column %d: %w", i, err)
		}
	}
	return nil
}

// Err returns the error, if any, encountered during iteration or when
// finalizing the read transaction at end of stream.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor, closing the iterator and finalizing the read
// transaction if the stream was not already drained. It is idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cur = nil
	return r.finish(r.err)
}

// finish tears down the streaming state exactly once: the iterator is
// closed and the transaction finalizer runs (commit on success, abort when
// err != nil). It returns the teardown error, if any.
func (r *Rows) finish(err error) error {
	var out error
	if r.it != nil {
		if cerr := r.it.Close(); cerr != nil && err == nil {
			err, out = cerr, cerr
		}
		r.it = nil
	}
	if r.done != nil {
		if ferr := r.done(err); ferr != nil && ferr != err {
			out = ferr
		}
		r.done = nil
	}
	return out
}

// drain consumes the remaining rows into a Result and closes the cursor —
// the compatibility bridge Exec uses on top of the streaming path.
func (r *Rows) drain() (*Result, error) {
	var rows []rel.Row
	for r.Next() {
		rows = append(rows, r.cur)
	}
	if cerr := r.Close(); r.err == nil && cerr != nil {
		return nil, cerr
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Result{Columns: r.cols, Rows: rows, Affected: r.affected, Message: r.msg}, nil
}

// assignValue converts one column value into a Scan target through the
// conversion table shared with the wire client (rel.Assign).
func assignValue(dest any, v rel.Value) error {
	return rel.Assign(dest, v)
}

// toValue converts a Go value into an engine value for parameter binding.
// The conversion table (rel.FromGo) is shared with the wire client so the
// same arguments bind identically embedded and remote.
func toValue(a any) (rel.Value, error) {
	v, err := rel.FromGo(a)
	if err != nil {
		return rel.Value{}, fmt.Errorf("neurdb: %w", err)
	}
	return v, nil
}

// convertArgs validates the argument count against the statement's
// parameter count and converts each argument.
func convertArgs(nParams int, args []any) ([]rel.Value, error) {
	if len(args) != nParams {
		return nil, fmt.Errorf("neurdb: statement takes %d parameters, got %d arguments", nParams, len(args))
	}
	if nParams == 0 {
		return nil, nil
	}
	out := make([]rel.Value, nParams)
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
